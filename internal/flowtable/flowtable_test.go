package flowtable

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

var (
	hostA = pkt.MustMAC("02:00:00:00:00:0a")
	hostB = pkt.MustMAC("02:00:00:00:00:0b")
	ipA   = pkt.MustIPv4("10.0.0.1")
	ipB   = pkt.MustIPv4("10.0.0.2")
)

// key builds a pkt.Key for a UDP packet.
func udpKey(inPort uint32, src, dst pkt.MAC, ipSrc, ipDst pkt.IPv4, sport, dport uint16) *pkt.Key {
	return &pkt.Key{
		InPort: inPort, EthSrc: src, EthDst: dst, EthType: pkt.EtherTypeIPv4,
		HasIPv4: true, IPProto: pkt.IPProtoUDP, IPSrc: ipSrc, IPDst: ipDst,
		HasL4: true, L4Src: sport, L4Dst: dport,
	}
}

func vlanKey(inPort uint32, vid uint16) *pkt.Key {
	k := udpKey(inPort, hostA, hostB, ipA, ipB, 1000, 2000)
	k.HasVLAN = true
	k.VLANID = vid
	return k
}

func outputTo(port uint32) []openflow.Instruction {
	return []openflow.Instruction{&openflow.InstrApplyActions{
		Actions: []openflow.Action{&openflow.ActionOutput{Port: port, MaxLen: 0xffff}},
	}}
}

func TestMatchZeroMatchesAll(t *testing.T) {
	m := &Match{}
	if !m.Matches(udpKey(1, hostA, hostB, ipA, ipB, 1, 2)) {
		t.Error("zero match must match everything")
	}
	if !m.Matches(&pkt.Key{}) {
		t.Error("zero match must match empty key")
	}
	if m.String() != "any" {
		t.Errorf("String = %q", m.String())
	}
}

func TestMatchFields(t *testing.T) {
	k := udpKey(3, hostA, hostB, ipA, ipB, 1000, 80)
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"in_port hit", Match{InPortSet: true, InPort: 3}, true},
		{"in_port miss", Match{InPortSet: true, InPort: 4}, false},
		{"eth_dst hit", Match{EthDstSet: true, EthDst: hostB, EthDstMask: onesMAC}, true},
		{"eth_dst miss", Match{EthDstSet: true, EthDst: hostA, EthDstMask: onesMAC}, false},
		{"eth_type hit", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4}, true},
		{"eth_type miss", Match{EthTypeSet: true, EthType: pkt.EtherTypeARP}, false},
		{"vlan absent hit", Match{VLAN: VLANAbsent}, true},
		{"vlan exact miss", Match{VLAN: VLANExact, VLANVID: 5}, false},
		{"ip_proto hit", Match{IPProtoSet: true, IPProto: pkt.IPProtoUDP}, true},
		{"ip_proto miss", Match{IPProtoSet: true, IPProto: pkt.IPProtoTCP}, false},
		{"ip_src hit", Match{IPSrcSet: true, IPSrc: ipA, IPSrcMask: onesIPv4}, true},
		{"ip_src prefix hit", Match{IPSrcSet: true, IPSrc: pkt.MustIPv4("10.0.0.0"), IPSrcMask: pkt.MustIPv4("255.255.255.0")}, true},
		{"ip_src prefix miss", Match{IPSrcSet: true, IPSrc: pkt.MustIPv4("10.0.1.0"), IPSrcMask: pkt.MustIPv4("255.255.255.0")}, false},
		{"l4_dst hit", Match{L4DstSet: true, L4Dst: 80}, true},
		{"l4_dst miss", Match{L4DstSet: true, L4Dst: 443}, false},
	}
	for _, c := range cases {
		if got := c.m.Matches(k); got != c.want {
			t.Errorf("%s: got %v", c.name, got)
		}
	}
}

func TestMatchVLANModes(t *testing.T) {
	tagged := vlanKey(1, 101)
	m := Match{VLAN: VLANExact, VLANVID: 101}
	if !m.Matches(tagged) {
		t.Error("vlan exact should hit")
	}
	m = Match{VLAN: VLANAbsent}
	if m.Matches(tagged) {
		t.Error("vlan absent should miss tagged")
	}
}

func TestMatchICMPAndARP(t *testing.T) {
	icmpK := &pkt.Key{EthType: pkt.EtherTypeIPv4, HasIPv4: true, IPProto: pkt.IPProtoICMP,
		HasICMP: true, ICMPType: 8, ICMPCode: 0}
	m := Match{ICMPTypeSet: true, ICMPType: 8}
	if !m.Matches(icmpK) {
		t.Error("icmp type should hit")
	}
	m = Match{ICMPCodeSet: true, ICMPCode: 1}
	if m.Matches(icmpK) {
		t.Error("icmp code should miss")
	}
	arpK := &pkt.Key{EthType: pkt.EtherTypeARP, HasARP: true, ARPOp: 1,
		ARPSPA: ipA, ARPTPA: ipB}
	m = Match{ARPOpSet: true, ARPOp: 1}
	if !m.Matches(arpK) {
		t.Error("arp op should hit")
	}
	m = Match{ARPTPASet: true, ARPTPA: ipB, ARPTPAMask: onesIPv4}
	if !m.Matches(arpK) {
		t.Error("arp tpa should hit")
	}
	m = Match{ARPTPASet: true, ARPTPA: ipA, ARPTPAMask: onesIPv4}
	if m.Matches(arpK) {
		t.Error("arp tpa should miss")
	}
}

func TestOXMRoundTrip(t *testing.T) {
	wire := openflow.Match{}
	wire.WithInPort(2).
		WithEthDst(hostB).
		WithEthType(pkt.EtherTypeIPv4).
		WithVLAN(101).
		WithIPProto(pkt.IPProtoUDP).
		WithIPv4SrcMasked(pkt.MustIPv4("10.0.0.0"), pkt.MustIPv4("255.0.0.0")).
		WithUDPDst(53)
	m, err := FromOXM(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.InPortSet || m.InPort != 2 || m.VLAN != VLANExact || m.VLANVID != 101 {
		t.Errorf("decoded: %+v", m)
	}
	back := m.ToOXM()
	m2, err := FromOXM(&back)
	if err != nil {
		t.Fatal(err)
	}
	if *m != *m2 {
		t.Errorf("round trip:\n%+v\n%+v", m, m2)
	}
}

func TestOXMNoVLANRoundTrip(t *testing.T) {
	wire := openflow.Match{}
	wire.WithNoVLAN()
	m, err := FromOXM(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.VLAN != VLANAbsent {
		t.Errorf("VLAN mode: %v", m.VLAN)
	}
	back := m.ToOXM()
	if v := back.Get(openflow.OXMVLANVID); v == nil || v.Value[0] != 0 || v.Value[1] != 0 {
		t.Errorf("OXM: %+v", v)
	}
}

func TestTableLookupPriority(t *testing.T) {
	tbl := NewTable(0, nil)
	low := &Entry{Priority: 10, Match: &Match{}, Instructions: outputTo(1)}
	high := &Entry{Priority: 100, Match: &Match{InPortSet: true, InPort: 1}, Instructions: outputTo(2)}
	if err := tbl.Add(low); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(high); err != nil {
		t.Fatal(err)
	}
	k := udpKey(1, hostA, hostB, ipA, ipB, 1, 2)
	if e := tbl.Lookup(k, 100); e != high {
		t.Errorf("lookup returned %v", e)
	}
	k2 := udpKey(9, hostA, hostB, ipA, ipB, 1, 2)
	if e := tbl.Lookup(k2, 100); e != low {
		t.Errorf("lookup returned %v", e)
	}
	if lookups, matched := tbl.Stats(); lookups != 2 || matched != 2 {
		t.Errorf("stats: %d/%d", lookups, matched)
	}
	if high.Packets() != 1 || high.Bytes() != 100 {
		t.Errorf("counters: %d/%d", high.Packets(), high.Bytes())
	}
}

func TestTableMissReturnsNil(t *testing.T) {
	tbl := NewTable(0, nil)
	e := &Entry{Priority: 5, Match: &Match{InPortSet: true, InPort: 7}, Instructions: outputTo(1)}
	if err := tbl.Add(e); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2), 10); got != nil {
		t.Errorf("expected miss, got %v", got)
	}
	if lookups, matched := tbl.Stats(); lookups != 1 || matched != 0 {
		t.Errorf("stats: %d/%d", lookups, matched)
	}
}

func TestTableAddReplacesSameMatchPriority(t *testing.T) {
	tbl := NewTable(0, nil)
	m := &Match{InPortSet: true, InPort: 1}
	_ = tbl.Add(&Entry{Priority: 10, Match: m, Instructions: outputTo(1)})
	m2 := *m
	_ = tbl.Add(&Entry{Priority: 10, Match: &m2, Instructions: outputTo(2)})
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	e := tbl.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2), 10)
	acts := e.Instructions[0].(*openflow.InstrApplyActions).Actions
	if acts[0].(*openflow.ActionOutput).Port != 2 {
		t.Error("replacement did not take effect")
	}
}

func TestTableMaxFlows(t *testing.T) {
	tbl := NewTable(0, nil)
	tbl.SetMaxFlows(2)
	for i := uint32(1); i <= 2; i++ {
		if err := tbl.Add(&Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: i}}); err != nil {
			t.Fatal(err)
		}
	}
	err := tbl.Add(&Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 3}})
	if err != ErrTableFull {
		t.Errorf("err = %v", err)
	}
}

func TestTableDeleteNonStrict(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 10, Match: &Match{InPortSet: true, InPort: 1, EthTypeSet: true, EthType: pkt.EtherTypeIPv4}, Instructions: outputTo(5)})
	_ = tbl.Add(&Entry{Priority: 20, Match: &Match{InPortSet: true, InPort: 1}, Instructions: outputTo(6)})
	_ = tbl.Add(&Entry{Priority: 30, Match: &Match{InPortSet: true, InPort: 2}, Instructions: outputTo(7)})
	// Non-strict delete of everything matching in_port=1 (both more
	// specific entries qualify).
	removed := tbl.Delete(&Match{InPortSet: true, InPort: 1}, 0, false, openflow.PortAny)
	if len(removed) != 2 || tbl.Len() != 1 {
		t.Errorf("removed %d, len %d", len(removed), tbl.Len())
	}
	for _, r := range removed {
		if r.Reason != openflow.FlowRemovedDelete {
			t.Errorf("reason: %d", r.Reason)
		}
	}
	// Wildcard delete-all.
	removed = tbl.Delete(&Match{}, 0, false, openflow.PortAny)
	if len(removed) != 1 || tbl.Len() != 0 {
		t.Errorf("wildcard delete: %d, len %d", len(removed), tbl.Len())
	}
}

func TestTableDeleteStrict(t *testing.T) {
	tbl := NewTable(0, nil)
	m := &Match{InPortSet: true, InPort: 1}
	_ = tbl.Add(&Entry{Priority: 10, Match: m, Instructions: outputTo(1)})
	_ = tbl.Add(&Entry{Priority: 20, Match: &Match{InPortSet: true, InPort: 1, EthTypeSet: true, EthType: 0x800}, Instructions: outputTo(2)})
	// Strict with wrong priority: nothing.
	if removed := tbl.Delete(m, 99, true, openflow.PortAny); len(removed) != 0 {
		t.Errorf("strict wrong prio removed %d", len(removed))
	}
	// Strict with right priority and exact match: one entry.
	m2 := *m
	if removed := tbl.Delete(&m2, 10, true, openflow.PortAny); len(removed) != 1 {
		t.Errorf("strict removed %d", len(removed))
	}
	if tbl.Len() != 1 {
		t.Errorf("len %d", tbl.Len())
	}
}

func TestTableDeleteOutPortFilter(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 1}, Instructions: outputTo(5)})
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 2}, Instructions: outputTo(6)})
	removed := tbl.Delete(&Match{}, 0, false, 5)
	if len(removed) != 1 || tbl.Len() != 1 {
		t.Errorf("out_port filter: removed %d len %d", len(removed), tbl.Len())
	}
}

func TestTableModify(t *testing.T) {
	tbl := NewTable(0, nil)
	m := &Match{InPortSet: true, InPort: 1}
	e := &Entry{Priority: 10, Match: m, Instructions: outputTo(1)}
	_ = tbl.Add(e)
	tbl.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2), 50)
	n := tbl.Modify(&Match{InPortSet: true, InPort: 1}, 0, false, outputTo(9))
	if n != 1 {
		t.Fatalf("modified %d", n)
	}
	// Counters preserved.
	if e.Packets() != 1 {
		t.Error("modify reset counters")
	}
	got := tbl.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2), 50)
	acts := got.Instrs()[0].(*openflow.InstrApplyActions).Actions
	if acts[0].(*openflow.ActionOutput).Port != 9 {
		t.Error("instructions not updated")
	}
	// Strict modify with wrong priority: no-op.
	if n := tbl.Modify(m, 99, true, outputTo(1)); n != 0 {
		t.Errorf("strict modify matched %d", n)
	}
}

func TestTableTimeouts(t *testing.T) {
	clk := netem.NewManualClock()
	tbl := NewTable(0, clk)
	idle := &Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 1}, IdleTimeout: 10}
	hard := &Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 2}, HardTimeout: 30}
	forever := &Entry{Priority: 1, Match: &Match{InPortSet: true, InPort: 3}}
	_ = tbl.Add(idle)
	_ = tbl.Add(hard)
	_ = tbl.Add(forever)

	clk.Advance(5 * time.Second)
	// Keep the idle entry alive by hitting it.
	tbl.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2), 10)
	clk.Advance(6 * time.Second) // idle last hit 6s ago (< 10), hard at 11s
	if removed := tbl.ExpireEntries(); len(removed) != 0 {
		t.Fatalf("premature expiry: %d", len(removed))
	}
	clk.Advance(10 * time.Second) // idle 16s ago -> expire; hard at 21s
	removed := tbl.ExpireEntries()
	if len(removed) != 1 || removed[0].Entry != idle || removed[0].Reason != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("idle expiry: %+v", removed)
	}
	clk.Advance(10 * time.Second) // hard at 31s -> expire
	removed = tbl.ExpireEntries()
	if len(removed) != 1 || removed[0].Entry != hard || removed[0].Reason != openflow.FlowRemovedHardTimeout {
		t.Fatalf("hard expiry: %+v", removed)
	}
	if tbl.Len() != 1 {
		t.Errorf("len %d", tbl.Len())
	}
}

func TestTableVersionBumps(t *testing.T) {
	tbl := NewTable(0, nil)
	v0 := tbl.Version()
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{}})
	if tbl.Version() == v0 {
		t.Error("Add did not bump version")
	}
	v1 := tbl.Version()
	tbl.Delete(&Match{}, 0, false, openflow.PortAny)
	if tbl.Version() == v1 {
		t.Error("Delete did not bump version")
	}
}

func TestCoveredBy(t *testing.T) {
	specific := &Match{InPortSet: true, InPort: 1, EthTypeSet: true, EthType: 0x800,
		IPSrcSet: true, IPSrc: pkt.MustIPv4("10.1.2.3"), IPSrcMask: onesIPv4}
	wide := &Match{InPortSet: true, InPort: 1}
	prefix := &Match{IPSrcSet: true, IPSrc: pkt.MustIPv4("10.1.0.0"), IPSrcMask: pkt.MustIPv4("255.255.0.0")}
	all := &Match{}
	if !specific.CoveredBy(wide) {
		t.Error("specific should be covered by wide")
	}
	if wide.CoveredBy(specific) {
		t.Error("wide should not be covered by specific")
	}
	if !specific.CoveredBy(prefix) {
		t.Error("exact IP should be covered by shorter prefix")
	}
	if !specific.CoveredBy(all) || !wide.CoveredBy(all) {
		t.Error("everything covered by match-all")
	}
	if all.CoveredBy(specific) {
		t.Error("match-all not covered by specific")
	}
}

func TestGroupSelectAffinity(t *testing.T) {
	g := &Group{ID: 1, Type: openflow.GroupTypeSelect, Buckets: []openflow.Bucket{
		{Weight: 1}, {Weight: 1}, {Weight: 1},
	}}
	k := udpKey(1, hostA, hostB, ipA, ipB, 1234, 80)
	h := FlowHash(k)
	b1 := g.SelectBucket(h)
	for i := 0; i < 10; i++ {
		if g.SelectBucket(h) != b1 {
			t.Fatal("same flow must select the same bucket")
		}
	}
	// Different flows should spread across buckets.
	seen := map[*openflow.Bucket]bool{}
	for p := uint16(1); p <= 200; p++ {
		k := udpKey(1, hostA, hostB, ipA, ipB, p, 80)
		seen[g.SelectBucket(FlowHash(k))] = true
	}
	if len(seen) < 2 {
		t.Error("no spreading across buckets")
	}
}

func TestGroupSelectWeights(t *testing.T) {
	g := &Group{ID: 1, Type: openflow.GroupTypeSelect, Buckets: []openflow.Bucket{
		{Weight: 9}, {Weight: 1},
	}}
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		k := udpKey(1, hostA, hostB, ipA, pkt.IPv4FromUint32(uint32(i)), uint16(i), 80)
		b := g.SelectBucket(FlowHash(k))
		if b == &g.Buckets[0] {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	frac := float64(counts[0]) / 5000
	if frac < 0.8 || frac > 0.98 {
		t.Errorf("weight-9 bucket got %.2f of flows, want ~0.9", frac)
	}
}

func TestGroupTableOperations(t *testing.T) {
	gt := NewGroupTable()
	add := &openflow.GroupMod{Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
		Buckets: []openflow.Bucket{{Weight: 1}}}
	if err := gt.Apply(add); err != nil {
		t.Fatal(err)
	}
	if err := gt.Apply(add); err == nil {
		t.Error("duplicate add accepted")
	}
	if _, ok := gt.Get(1); !ok {
		t.Error("group missing")
	}
	mod := &openflow.GroupMod{Command: openflow.GroupModify, GroupType: openflow.GroupTypeAll, GroupID: 1}
	if err := gt.Apply(mod); err != nil {
		t.Fatal(err)
	}
	g, _ := gt.Get(1)
	if g.Type != openflow.GroupTypeAll {
		t.Error("modify ignored")
	}
	if err := gt.Apply(&openflow.GroupMod{Command: openflow.GroupModify, GroupID: 77}); err == nil {
		t.Error("modify of unknown group accepted")
	}
	if err := gt.Apply(&openflow.GroupMod{Command: openflow.GroupDelete, GroupID: 1}); err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 0 {
		t.Error("delete ignored")
	}
	// Delete-all.
	_ = gt.Apply(add)
	if err := gt.Apply(&openflow.GroupMod{Command: openflow.GroupDelete, GroupID: openflow.GroupAny}); err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 0 {
		t.Error("delete-all ignored")
	}
}

func TestGroupEmptyAndIndirect(t *testing.T) {
	g := &Group{ID: 2, Type: openflow.GroupTypeSelect}
	if g.SelectBucket(123) != nil {
		t.Error("empty group must return nil")
	}
	gi := &Group{ID: 3, Type: openflow.GroupTypeIndirect, Buckets: []openflow.Bucket{{Weight: 0}}}
	if gi.SelectBucket(9) != &gi.Buckets[0] {
		t.Error("indirect group must return the single bucket")
	}
}

func TestMeterTokenBucket(t *testing.T) {
	clk := netem.NewManualClock()
	mt := NewMeterTable(clk)
	err := mt.Apply(&openflow.MeterMod{
		Command: openflow.MeterAdd, Flags: openflow.MeterFlagPktps, MeterID: 1,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: 10, BurstSize: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 5 passes, 6th drops.
	passed := 0
	for i := 0; i < 6; i++ {
		if mt.Pass(1, 100) {
			passed++
		}
	}
	if passed != 5 {
		t.Errorf("burst passed %d, want 5", passed)
	}
	// After 1s, 10 more tokens (capped at burst 5).
	clk.Advance(time.Second)
	passed = 0
	for i := 0; i < 10; i++ {
		if mt.Pass(1, 100) {
			passed++
		}
	}
	if passed != 5 {
		t.Errorf("after refill passed %d, want 5", passed)
	}
	m, _ := mt.Get(1)
	if m.Dropped() == 0 || m.Passed() == 0 {
		t.Error("meter counters not updated")
	}
}

func TestMeterUnknownPassesAll(t *testing.T) {
	mt := NewMeterTable(nil)
	if !mt.Pass(99, 100) {
		t.Error("unknown meter must pass")
	}
}

func TestMeterModValidation(t *testing.T) {
	mt := NewMeterTable(nil)
	bad := &openflow.MeterMod{Command: openflow.MeterAdd, MeterID: 1}
	if err := mt.Apply(bad); err == nil {
		t.Error("meter without bands accepted")
	}
	ok := &openflow.MeterMod{Command: openflow.MeterAdd, MeterID: 1,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: 5}}}
	if err := mt.Apply(ok); err != nil {
		t.Fatal(err)
	}
	if err := mt.Apply(ok); err == nil {
		t.Error("duplicate meter accepted")
	}
	del := &openflow.MeterMod{Command: openflow.MeterDelete, MeterID: 1}
	if err := mt.Apply(del); err != nil {
		t.Fatal(err)
	}
}
