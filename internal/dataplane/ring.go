package dataplane

import (
	"sync/atomic"
)

// TypedRing is a bounded, lock-free, multi-producer multi-consumer
// queue of values of type T (the classic sequence-numbered ring of
// Vyukov's bounded MPMC queue). Frame traffic uses the Ring wrapper
// below; other fixed-size payloads — the telemetry subsystem's flow
// records on their way from the datapath shards to the aggregator —
// instantiate TypedRing directly.
//
// Push and Pop never block and never allocate; a full ring rejects the
// push (the caller counts the drop, exactly like a NIC tail-drop).
type TypedRing[T any] struct {
	mask  uint64
	slots []typedSlot[T]
	_     [64]byte // keep head and tail on separate cache lines
	head  atomic.Uint64
	_     [64]byte
	tail  atomic.Uint64
}

type typedSlot[T any] struct {
	seq atomic.Uint64
	v   T
}

// NewTypedRing creates a ring with capacity rounded up to a power of
// two, clamped to [2, 1<<30] slots.
func NewTypedRing[T any](capacity int) *TypedRing[T] {
	if capacity > 1<<30 {
		capacity = 1 << 30
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &TypedRing[T]{mask: uint64(n - 1), slots: make([]typedSlot[T], n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity in slots.
func (r *TypedRing[T]) Cap() int { return len(r.slots) }

// Len returns the approximate number of queued values.
func (r *TypedRing[T]) Len() int {
	n := int(r.head.Load()) - int(r.tail.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Push enqueues one value. It returns false when the ring is full (the
// value is not enqueued).
//
//harmless:hotpath
func (r *TypedRing[T]) Push(v T) bool {
	pos := r.head.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				slot.v = v
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case diff < 0:
			return false // full
		default:
			pos = r.head.Load()
		}
	}
}

// Pop dequeues the oldest value. It returns false when the ring is
// empty. The vacated slot is zeroed so popped values do not pin
// whatever T references.
//
//harmless:hotpath
func (r *TypedRing[T]) Pop() (T, bool) {
	var zero T
	pos := r.tail.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				v := slot.v
				slot.v = zero
				slot.seq.Store(pos + uint64(len(r.slots)))
				return v, true
			}
			pos = r.tail.Load()
		case diff < 0:
			return zero, false // empty
		default:
			pos = r.tail.Load()
		}
	}
}

// frameTag is the payload of a frame Ring slot: the frame plus the
// ingress port it arrived on.
type frameTag struct {
	frame []byte
	port  uint32
}

// Ring is a bounded, lock-free, multi-producer multi-consumer frame
// queue: TypedRing instantiated for (frame, ingress-port) pairs. It is
// the in-memory substitute for a NIC queue: benchmarks and
// cmd/trafficgen attach it as a softswitch egress backend and drain it
// from the measurement loop, keeping netem's goroutines and timing
// model out of the measured path; the poll-mode worker runtime uses
// one per worker as its RX queue.
//
// Push and Pop never block and never allocate; a full ring rejects the
// push (the caller counts the drop, exactly like a NIC tail-drop).
type Ring struct {
	r TypedRing[frameTag]
}

// NewRing creates a ring with capacity rounded up to a power of two,
// clamped to [2, 1<<30] slots.
func NewRing(capacity int) *Ring {
	return &Ring{r: *NewTypedRing[frameTag](capacity)}
}

// Cap returns the ring capacity in frames.
func (r *Ring) Cap() int { return r.r.Cap() }

// Len returns the approximate number of queued frames.
func (r *Ring) Len() int { return r.r.Len() }

// Push enqueues one frame, taking ownership. It returns false when the
// ring is full (the frame is not enqueued and stays the caller's).
func (r *Ring) Push(frame []byte) bool { return r.PushFrame(frame, 0) }

// PushFrame enqueues one frame tagged with its ingress port, taking
// ownership of the frame. It returns false when the ring is full (the
// frame is not enqueued and stays the caller's). This is the producer
// side of an RX queue: the poll-mode worker runtime tags each frame so
// one ring can carry traffic arriving on many datapath ports.
//
//harmless:hotpath
func (r *Ring) PushFrame(frame []byte, inPort uint32) bool {
	return r.r.Push(frameTag{frame: frame, port: inPort})
}

// Pop dequeues the oldest frame, transferring ownership to the caller.
// It returns false when the ring is empty.
func (r *Ring) Pop() ([]byte, bool) {
	frame, _, ok := r.PopFrame()
	return frame, ok
}

// PopFrame dequeues the oldest frame with its ingress-port tag,
// transferring ownership to the caller. It returns false when the ring
// is empty. Frames enqueued with Push carry port 0.
//
//harmless:hotpath
func (r *Ring) PopFrame() ([]byte, uint32, bool) {
	t, ok := r.r.Pop()
	return t.frame, t.port, ok
}

// Drain pops up to max frames (or everything queued when max <= 0)
// into the given slice, which is grown as needed and returned — the
// batch-vector shape ReceiveBatch consumes directly.
func (r *Ring) Drain(into [][]byte, max int) [][]byte {
	for max <= 0 || len(into) < max {
		f, ok := r.Pop()
		if !ok {
			break
		}
		into = append(into, f)
	}
	return into
}

// DrainBatch pops up to max frames (or everything queued when max <= 0)
// into b via Append, preserving each frame's ingress-port tag — the
// Batch+Meta shape Switch.ReceiveMixedBatch consumes. It returns the
// number of frames appended.
func (r *Ring) DrainBatch(b *Batch, max int) int {
	n := 0
	for max <= 0 || n < max {
		f, port, ok := r.PopFrame()
		if !ok {
			break
		}
		b.Append(f, port)
		n++
	}
	return n
}
