package fabric

import (
	"fmt"
	"net"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/harmless"
	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/mgmt"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Deployment is a fully assembled HARMLESS testbed: the Fig. 1
// topology with an arbitrary number of hosts.
//
//	host[i] --- legacy switch ---(trunk)--- SS_1 ===patch=== SS_2 --- controller
type Deployment struct {
	Legacy    *legacy.Switch
	CLI       *legacy.CLIServer
	Manager   *harmless.Manager
	S4        *harmless.S4
	Ctrl      *controller.Controller
	Hosts     map[int]*Host // keyed by legacy access port
	Links     []*netem.Link
	TrunkLink *netem.Link

	clock netem.Clock // timebase for WaitConnected polling
}

// DeployConfig parameterizes BuildDeployment.
type DeployConfig struct {
	// NumPorts on the legacy switch (trunk is the highest port).
	NumPorts int
	// HostPorts: access ports that get an emulated host (default: all
	// access ports). Host on port p gets IP 10.0.0.p and a stable MAC.
	HostPorts []int
	// AccessPorts passed to the manager (nil = all but trunk).
	AccessPorts []int
	// Apps to run on the controller.
	Apps []controller.App
	// Dialect of the legacy switch CLI.
	Dialect legacy.Dialect
	// Specialize enables the compiled fast path on SS_1/SS_2.
	Specialize bool
	// LinkConfig template for the host and trunk links (Name is
	// overridden per link).
	LinkConfig netem.LinkConfig
	// SweepInterval for SS_2 flow expiry (0 = disabled).
	SweepInterval time.Duration
	// Clock injection.
	Clock netem.Clock
	// DatapathID for SS_2 (0 = package default). Must be unique when
	// several deployments share one controller.
	DatapathID uint64
	// Hostname for the legacy switch (default "legacy-sw").
	Hostname string
	// Controller reuses an existing controller instead of creating
	// one (multi-switch deployments); Apps is ignored when set.
	Controller *controller.Controller
	// Controllers adds external control-plane endpoints (dialed
	// addresses or established transports) on top of — or instead of —
	// the in-process controller.
	Controllers []controlplane.Endpoint
	// ControlPlane tunes SS_2's controller channels (keepalive,
	// backoff, logger). Zero = defaults.
	ControlPlane controlplane.Config
}

// HostMAC returns the deterministic MAC used for the host on an access
// port.
func HostMAC(port int) pkt.MAC {
	return pkt.MAC{0x02, 0xaa, 0, 0, 0, byte(port)}
}

// HostIP returns the deterministic IP used for the host on an access
// port.
func HostIP(port int) pkt.IPv4 { return pkt.IPv4{10, 0, 0, byte(port)} }

// BuildDeployment assembles the complete testbed and runs the manager
// end to end (CLI-driver configuration, S4 bring-up, controller
// connection over an in-memory pipe).
func BuildDeployment(cfg DeployConfig) (*Deployment, error) {
	if cfg.NumPorts < 2 {
		return nil, fmt.Errorf("fabric: need >= 2 ports")
	}
	d := &Deployment{Hosts: make(map[int]*Host), clock: cfg.Clock}
	if d.clock == nil {
		d.clock = netem.RealClock{}
	}
	var opts []legacy.Option
	if cfg.Clock != nil {
		opts = append(opts, legacy.WithClock(cfg.Clock))
	}
	hostname := cfg.Hostname
	if hostname == "" {
		hostname = "legacy-sw"
	}
	d.Legacy = legacy.NewSwitch(hostname, cfg.NumPorts, opts...)
	d.CLI = legacy.NewCLIServer(d.Legacy, cfg.Dialect)

	trunkPort := cfg.NumPorts

	// Hosts.
	hostPorts := cfg.HostPorts
	if hostPorts == nil {
		for p := 1; p < cfg.NumPorts; p++ {
			hostPorts = append(hostPorts, p)
		}
	}
	for _, p := range hostPorts {
		if p == trunkPort {
			return nil, fmt.Errorf("fabric: host port %d is the trunk", p)
		}
		lc := cfg.LinkConfig
		lc.Name = fmt.Sprintf("host%d", p)
		link := netem.NewLink(lc)
		d.Links = append(d.Links, link)
		d.Legacy.AttachPort(p, link.A())
		d.Hosts[p] = NewHost(fmt.Sprintf("h%d", p), HostMAC(p), HostIP(p), link.B()).SetClock(cfg.Clock)
	}

	// Trunk link between the legacy switch and SS_1.
	lc := cfg.LinkConfig
	lc.Name = "trunk"
	d.TrunkLink = netem.NewLink(lc)
	d.Legacy.AttachPort(trunkPort, d.TrunkLink.A())

	// Management: CLI over an in-memory TCP-like pipe.
	mgmtClient, mgmtServer := net.Pipe()
	go func() { _ = d.CLI.ServeConn(mgmtServer) }()
	vendor := "ciscoish"
	if cfg.Dialect == legacy.DialectAristaish {
		vendor = "aristaish"
	}
	driver, err := mgmt.NewDriver(mgmtClient, vendor)
	if err != nil {
		return nil, fmt.Errorf("fabric: mgmt driver: %w", err)
	}

	// Controller: fresh, or shared across deployments.
	if cfg.Controller != nil {
		d.Ctrl = cfg.Controller
	} else {
		d.Ctrl = controller.New(cfg.Apps)
	}
	endpoints := append([]controlplane.Endpoint(nil), cfg.Controllers...)
	if len(cfg.Apps) > 0 || cfg.Controller != nil {
		swSide, ctrlSide := net.Pipe()
		endpoints = append(endpoints, controlplane.Endpoint{Conn: swSide})
		go func() { _, _ = d.Ctrl.AttachConn(ctrlSide) }()
	}

	// Manager deploy.
	d.Manager = harmless.NewManager(driver, nil, harmless.ManagerConfig{
		TrunkPort:     trunkPort,
		AccessPorts:   cfg.AccessPorts,
		Specialize:    cfg.Specialize,
		SweepInterval: cfg.SweepInterval,
		ControlPlane:  cfg.ControlPlane,
		Clock:         cfg.Clock,
		DatapathID:    cfg.DatapathID,
	})
	s4, err := d.Manager.Deploy(d.TrunkLink.B(), endpoints)
	if err != nil {
		return nil, err
	}
	d.S4 = s4
	return d, nil
}

// Close releases all links and the controller channel.
func (d *Deployment) Close() {
	if d.S4 != nil {
		d.S4.Stop()
	}
	for _, l := range d.Links {
		l.Close()
	}
	if d.TrunkLink != nil {
		d.TrunkLink.Close()
	}
}

// WaitConnected blocks until the controller has registered SS_2 and
// its SwitchConnected hooks have installed their flows. The poll runs
// on the deployment's injected clock (DeployConfig.Clock), so under a
// virtual timebase the wait consumes simulated, not wall, time.
func (d *Deployment) WaitConnected(timeout time.Duration) error {
	sleep := func(dur time.Duration) {
		t := netem.NewTimer(d.clock, dur)
		<-t.C
	}
	deadline := d.clock.Now().Add(timeout)
	dpid := d.S4.SS2.DatapathID()
	for d.clock.Now().Before(deadline) {
		if h, ok := d.Ctrl.Switch(dpid); ok {
			// Fence with a barrier so proactive flows are in place.
			_ = h.Barrier()
			sleep(10 * time.Millisecond)
			return nil
		}
		sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("fabric: controller never saw switch %#x: %w", dpid, ErrTimeout)
}
