package fabric

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// twoHosts wires two hosts back-to-back over one link.
func twoHosts(t *testing.T) (*Host, *Host) {
	t.Helper()
	l := netem.NewLink(netem.LinkConfig{})
	t.Cleanup(l.Close)
	h1 := NewHost("h1", HostMAC(1), HostIP(1), l.A())
	h2 := NewHost("h2", HostMAC(2), HostIP(2), l.B())
	return h1, h2
}

func TestHostARPResolution(t *testing.T) {
	h1, h2 := twoHosts(t)
	mac, err := h1.Resolve(h2.IP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mac != h2.MAC {
		t.Errorf("resolved %s, want %s", mac, h2.MAC)
	}
	// h2 must have learned h1 from the request (gratuitous learning).
	mac, err = h2.Resolve(h1.IP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mac != h1.MAC {
		t.Errorf("reverse resolve %s", mac)
	}
}

func TestHostARPTimeout(t *testing.T) {
	h1, _ := twoHosts(t)
	if _, err := h1.Resolve(pkt.MustIPv4("10.9.9.9"), 30*time.Millisecond); err == nil {
		t.Error("expected timeout for unknown IP")
	}
}

func TestHostPing(t *testing.T) {
	h1, h2 := twoHosts(t)
	if err := h1.Ping(h2.IP, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h2.Ping(h1.IP, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h1.Ping(pkt.MustIPv4("10.9.9.9"), 30*time.Millisecond); err == nil {
		t.Error("ping to nowhere succeeded")
	}
}

func TestHostUDPEcho(t *testing.T) {
	h1, h2 := twoHosts(t)
	h2.HandleUDP(7, func(m UDPMessage) []byte {
		return append([]byte("echo:"), m.Payload...)
	})
	if err := h1.SendUDP(h2.IP, 5555, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg, err := h1.RecvUDP(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "echo:hi" || msg.SrcPort != 7 {
		t.Errorf("reply: %+v", msg)
	}
}

func TestHostTCPGet(t *testing.T) {
	h1, h2 := twoHosts(t)
	h2.ServeTCP(80, func(req []byte) []byte {
		if !bytes.HasPrefix(req, []byte("GET ")) {
			return []byte("HTTP/1.0 400 Bad Request\r\n\r\n")
		}
		return []byte("HTTP/1.0 200 OK\r\n\r\nhello from h2")
	})
	resp, err := h1.GetTCP(h2.IP, 80, []byte("GET / HTTP/1.0\r\n\r\n"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp, []byte("200 OK")) {
		t.Errorf("response: %q", resp)
	}
	// A second request must work (fresh ephemeral port).
	resp, err = h1.GetTCP(h2.IP, 80, []byte("GET / HTTP/1.0\r\n\r\n"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp, []byte("hello from h2")) {
		t.Errorf("response: %q", resp)
	}
}

func TestHostTCPTimeout(t *testing.T) {
	h1, _ := twoHosts(t)
	// No listener on h2.
	if _, err := h1.GetTCP(HostIP(2), 81, []byte("x"), 50*time.Millisecond); err == nil {
		t.Error("expected timeout")
	}
}

func TestHostDNS(t *testing.T) {
	h1, h2 := twoHosts(t)
	h2.ServeDNS(map[string]pkt.IPv4{"web.corp": pkt.MustIPv4("10.0.0.80")})
	resp, err := h1.QueryDNS(h2.IP, "web.corp", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].A != pkt.MustIPv4("10.0.0.80") {
		t.Errorf("answers: %+v", resp.Answers)
	}
	resp, err = h1.QueryDNS(h2.IP, "nope.corp", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != pkt.DNSRcodeNXDomain {
		t.Errorf("rcode: %d", resp.Rcode)
	}
}

func TestGenerator(t *testing.T) {
	g := NewUDPGenerator(512, 16, 1)
	if g.Len() != 16 {
		t.Fatalf("len %d", g.Len())
	}
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		f := g.Next()
		if len(f) != 512 {
			t.Fatalf("frame size %d", len(f))
		}
		p := pkt.DecodeEthernet(f)
		if p.Err() != nil || p.UDP() == nil {
			t.Fatalf("bad frame: %s", p)
		}
		seen[p.IPv4().Src.String()] = true
	}
	if len(seen) != 16 {
		t.Errorf("distinct flows: %d", len(seen))
	}
	// CopyNext returns private storage.
	a := g.CopyNext()
	b := g.frames[(g.next-1+len(g.frames))%len(g.frames)]
	a[0] ^= 0xff
	if a[0] == b[0] {
		t.Error("CopyNext returned shared storage")
	}
	// Minimum size clamp.
	gMin := NewUDPGenerator(10, 1, 1)
	if f := gMin.Next(); len(f) < pkt.EthernetHeaderLen+pkt.IPv4MinHeaderLen+pkt.UDPHeaderLen {
		t.Errorf("clamped size %d", len(f))
	}
}

func TestCapture(t *testing.T) {
	c := NewCapture()
	l := netem.NewLink(netem.LinkConfig{})
	defer l.Close()
	var got int
	l.B().SetReceiver(func([]byte) { got++ })
	Tap(l.B(), c, "b-side")
	f := make([]byte, 60)
	_ = l.A().Send(f)
	if got != 1 {
		t.Fatal("tap swallowed the frame")
	}
	if c.Count("b-side") != 1 {
		t.Fatalf("capture: %d", c.Count("b-side"))
	}
	if len(c.Frames()) != 1 || c.String() == "" {
		t.Error("capture accessors")
	}
}

// TestDeploymentPingThroughHARMLESS is the full-stack smoke test: two
// hosts on a migrated legacy switch ping each other through the
// complete chain (legacy VLAN tagging -> SS_1 translation -> SS_2
// learning switch -> back).
func TestDeploymentPingThroughHARMLESS(t *testing.T) {
	d, err := BuildDeployment(DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1, h2 := d.Hosts[1], d.Hosts[2]
	if err := h1.Ping(h2.IP, 2*time.Second); err != nil {
		t.Fatalf("ping h1->h2: %v", err)
	}
	if err := h2.Ping(h1.IP, 2*time.Second); err != nil {
		t.Fatalf("ping h2->h1: %v", err)
	}
	// The frames really crossed SS_1/SS_2 (not just the legacy
	// switch): counters prove the hairpin.
	if d.S4.SS1.PortCounters(1).RxPackets.Load() == 0 {
		t.Error("no traffic entered SS_1's trunk")
	}
	if d.S4.SS2.PortCounters(1).RxPackets.Load() == 0 {
		t.Error("no traffic entered SS_2 logical port 1")
	}
}

func TestDeploymentUDPAndTCP(t *testing.T) {
	d, err := BuildDeployment(DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1, h3 := d.Hosts[1], d.Hosts[3]
	h3.ServeTCP(80, func(req []byte) []byte { return []byte("OK:" + string(req)) })
	resp, err := h1.GetTCP(h3.IP, 80, []byte("GET /"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(resp, []byte("OK:GET /")) {
		t.Errorf("resp %q", resp)
	}
	h3.HandleUDP(9, func(m UDPMessage) []byte { return m.Payload })
	if err := h1.SendUDP(h3.IP, 1234, 9, []byte("u")); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.RecvUDP(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, err := BuildDeployment(DeployConfig{NumPorts: 1}); err == nil {
		t.Error("1-port deployment accepted")
	}
	if _, err := BuildDeployment(DeployConfig{NumPorts: 4, HostPorts: []int{4}}); err == nil {
		t.Error("host on trunk accepted")
	}
}

func TestDeploymentHelpers(t *testing.T) {
	if HostIP(7) != (pkt.IPv4{10, 0, 0, 7}) {
		t.Error("HostIP")
	}
	if HostMAC(7)[5] != 7 {
		t.Error("HostMAC")
	}
}

// TestPayloadIntegrityThroughHARMLESS is the end-to-end data-integrity
// property: random payloads of random sizes must arrive bit-identical
// after the tag/translate/hairpin journey.
func TestPayloadIntegrityThroughHARMLESS(t *testing.T) {
	d, err := BuildDeployment(DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1, h2 := d.Hosts[1], d.Hosts[2]
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		size := rng.Intn(1400) + 1
		payload := make([]byte, size)
		rng.Read(payload)
		if err := h1.SendUDP(h2.IP, 4000, 4001, payload); err != nil {
			t.Fatal(err)
		}
		msg, err := h2.RecvUDP(2 * time.Second)
		if err != nil {
			t.Fatalf("trial %d (size %d): %v", trial, size, err)
		}
		if !bytes.Equal(msg.Payload, payload) {
			t.Fatalf("trial %d: payload corrupted (%d bytes)", trial, size)
		}
	}
}

func TestMixGeneratorShape(t *testing.T) {
	g := NewMixGenerator(64, 4, 32, 8, 0.8, 7)
	if g.DistinctFlows() != 4+8*32 {
		t.Fatalf("distinct flows = %d", g.DistinctFlows())
	}
	counts := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		f := g.Next()
		if len(f) < 64 {
			t.Fatalf("frame %d bytes", len(f))
		}
		counts[string(f[6:12])]++ // src MAC identifies the flow
	}
	// Elephant share: the 4 elephants are the hottest flows by
	// construction and must carry roughly 80% of the packets.
	var elephantPkts int
	flows := len(counts)
	hottest := make([]int, 0, len(counts))
	for _, c := range counts {
		hottest = append(hottest, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(hottest)))
	for i := 0; i < 4 && i < len(hottest); i++ {
		elephantPkts += hottest[i]
	}
	share := float64(elephantPkts) / n
	if share < 0.7 || share > 0.9 {
		t.Fatalf("elephant share = %.2f, want ~0.8", share)
	}
	// Churn: far more distinct flows must have appeared than the
	// active window (mice died and were replaced).
	if flows <= 4+32 {
		t.Fatalf("no mouse churn: %d distinct flows seen", flows)
	}
	if g.Churned() == 0 {
		t.Fatal("Churned() = 0")
	}
}
