package netem

import (
	"fmt"
	"testing"
	"time"
)

// The ordering contract: timers fire in (deadline, registration)
// order, boundary deadlines included, with Now() pinned to each
// timer's own deadline during its callback.
func TestManualClockAdvanceOrdering(t *testing.T) {
	c := NewManualClock()
	epoch := c.Now()
	var got []string
	c.AfterFunc(30*time.Millisecond, func() { got = append(got, "c30") })
	c.AfterFunc(10*time.Millisecond, func() {
		if want := epoch.Add(10 * time.Millisecond); !c.Now().Equal(want) {
			t.Errorf("Now inside 10ms callback = %v, want %v", c.Now(), want)
		}
		got = append(got, "a10")
	})
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, "b10") }) // same deadline, later registration
	c.AfterFunc(50*time.Millisecond, func() { got = append(got, "d50") })

	// The advance boundary is inclusive: a timer at exactly +30ms fires
	// in an Advance(30ms).
	c.Advance(30 * time.Millisecond)
	if want := "[a10 b10 c30]"; fmt.Sprint(got) != want {
		t.Fatalf("after Advance(30ms): fired %v, want %v", got, want)
	}
	if want := epoch.Add(30 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now after advance = %v, want %v", c.Now(), want)
	}
	c.Advance(20 * time.Millisecond)
	if want := "[a10 b10 c30 d50]"; fmt.Sprint(got) != want {
		t.Fatalf("after Advance(50ms total): fired %v, want %v", got, want)
	}
}

// Timers registered by a callback within the advance window fire in
// the same Advance, in their proper (deadline, registration) slot; a
// zero-delay timer registered outside a callback waits for the next
// Advance, even Advance(0).
func TestManualClockAdvanceReentrantRegistration(t *testing.T) {
	c := NewManualClock()
	var got []string
	c.AfterFunc(10*time.Millisecond, func() {
		got = append(got, "first")
		// Exactly at this callback's own deadline: still inside the
		// window, fires later in the same Advance.
		c.AfterFunc(0, func() { got = append(got, "boundary") })
		c.AfterFunc(5*time.Millisecond, func() { got = append(got, "nested") })
		c.AfterFunc(time.Hour, func() { got = append(got, "far") })
	})
	c.Advance(15 * time.Millisecond)
	if want := "[first boundary nested]"; fmt.Sprint(got) != want {
		t.Fatalf("fired %v, want %v", got, want)
	}

	got = nil
	c.AfterFunc(0, func() { got = append(got, "zero") })
	if len(got) != 0 {
		t.Fatal("zero-delay timer fired at registration, want at next Advance")
	}
	c.Advance(0)
	if want := "[zero]"; fmt.Sprint(got) != want {
		t.Fatalf("after Advance(0): fired %v, want %v", got, want)
	}
}

func TestManualClockTimerStop(t *testing.T) {
	c := NewManualClock()
	fired := false
	cancel := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !cancel() {
		t.Fatal("first cancel reported no-op")
	}
	if cancel() {
		t.Fatal("second cancel reported success")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d, want 0", got)
	}
}

func TestManualClockNextTimerAndFired(t *testing.T) {
	c := NewManualClock()
	if _, ok := c.NextTimer(); ok {
		t.Fatal("NextTimer reported a pending timer on a fresh clock")
	}
	c.AfterFunc(20*time.Millisecond, func() {})
	c.AfterFunc(5*time.Millisecond, func() {})
	when, ok := c.NextTimer()
	if !ok || !when.Equal(c.Now().Add(5*time.Millisecond)) {
		t.Fatalf("NextTimer = %v,%v, want the 5ms deadline", when, ok)
	}
	c.AdvanceTo(when)
	if got := c.Fired(); got != 1 {
		t.Fatalf("Fired = %d after stepping to first deadline, want 1", got)
	}
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
	// AdvanceTo into the past is a no-op.
	c.AdvanceTo(c.Now().Add(-time.Hour))
	if got := c.Fired(); got != 1 {
		t.Fatalf("Fired = %d after no-op advance, want 1", got)
	}
}

// Ticker on a manual clock: ticks are delivered from inside Advance,
// one buffered tick per drain, and Stop ends the chain.
func TestVirtualTicker(t *testing.T) {
	c := NewManualClock()
	tk := NewTicker(c, 10*time.Millisecond)
	defer tk.Stop()

	c.Advance(9 * time.Millisecond)
	select {
	case <-tk.C:
		t.Fatal("tick before the interval elapsed")
	default:
	}
	c.Advance(time.Millisecond)
	select {
	case now := <-tk.C:
		if !now.Equal(c.Now()) {
			t.Fatalf("tick carries %v, want %v", now, c.Now())
		}
	default:
		t.Fatal("no tick at the interval boundary")
	}
	// An advance spanning many intervals leaves at most one buffered
	// tick, like time.Ticker under a slow receiver.
	c.Advance(100 * time.Millisecond)
	<-tk.C
	select {
	case <-tk.C:
		t.Fatal("more than one buffered tick")
	default:
	}
	tk.Stop()
	c.Advance(time.Second)
	select {
	case <-tk.C:
		t.Fatal("tick after Stop")
	default:
	}
}

func TestVirtualTimer(t *testing.T) {
	c := NewManualClock()
	tm := NewTimer(c, 25*time.Millisecond)
	c.Advance(30 * time.Millisecond)
	select {
	case <-tm.C:
	default:
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing reported cancellation")
	}

	tm2 := NewTimer(c, time.Minute)
	if !tm2.Stop() {
		t.Fatal("Stop before firing reported no-op")
	}
	c.Advance(2 * time.Minute)
	select {
	case <-tm2.C:
		t.Fatal("stopped timer fired")
	default:
	}
}
