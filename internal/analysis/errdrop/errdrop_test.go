package errdrop_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/src/errdrop", "errdrop", errdrop.Analyzer)
}
