package migrate

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/harmless"
	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/mgmt"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/sim"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// Traffic rides UDP between paired hosts on these ports.
const (
	trafficSrcPort = 49000
	trafficDstPort = 49001
)

// opTimeout bounds blocking control-plane operations (role requests,
// barriers) performed inside virtual-time callbacks. The datapath is
// quiescent while they block, so this is a wall-clock safety net, not
// simulation time.
const opTimeout = 10 * time.Second

// switchRig is one live legacy switch under migration: the emulated
// device with its vendor CLI, a netem trunk to the (future) server,
// one host per paired access port, and — once its wave deploys — a
// harmless.Manager-built S4 with a master/slave controller pair.
type switchRig struct {
	index int
	spec  SwitchSpec
	sw    *legacy.Switch

	driver mgmt.Driver
	trunk  *netem.Link
	links  []*netem.Link
	hosts  []*fabric.Host // index p-1 for access port p; nil if unpaired

	mgr           *harmless.Manager
	master, slave *controlplane.Controller
	gen           uint64

	deployed    bool
	serverAlive bool
	flapped     bool   // trunk administratively down by an in-flight flap
	preConfig   string // running config snapshotted before the wave

	// Traffic counters, read by the executor's conservation check.
	sent     uint64
	received uint64
	sendErrs uint64
	// deadTrunkRx counts frames the dead server absorbed after a
	// serverDown fault (flood copies, not host traffic).
	deadTrunkRx uint64
}

// trunkPort is the legacy port number cabled to the server.
func (r *switchRig) trunkPort() int { return r.spec.Ports }

// hostMAC and hostIP address host p (1-based access port) of rig idx.
func hostMAC(idx, p int) pkt.MAC { return pkt.MAC{0x02, 0xaa, byte(idx), 0, 0, byte(p)} }
func hostIP(idx, p int) pkt.IPv4 { return pkt.IPv4{10, 1, byte(idx), byte(p)} }

// newSwitchRig builds the pre-migration state: a legacy switch in its
// factory configuration, CLI management session established, hosts
// attached and ARP-seeded. Hosts pair up (1,2), (3,4), ...; with an
// odd access port count the last port is migrated but carries no
// traffic.
func newSwitchRig(eng *sim.Engine, idx int, spec SwitchSpec) (*switchRig, error) {
	r := &switchRig{
		index: idx,
		spec:  spec,
		sw:    legacy.NewSwitch(spec.Name, spec.Ports, legacy.WithClock(eng.Clock())),
	}
	cli := legacy.NewCLIServer(r.sw, legacy.DialectCiscoish)
	clientSide, serverSide := net.Pipe()
	go cli.ServeConn(serverSide) //nolint:errcheck
	driver, err := mgmt.NewDriver(clientSide, "ciscoish")
	if err != nil {
		return nil, fmt.Errorf("migrate: %s: cli session: %w", spec.Name, err)
	}
	r.driver = driver

	r.trunk = netem.NewLink(netem.LinkConfig{Name: spec.Name + "-trunk"})
	r.sw.AttachPort(r.trunkPort(), r.trunk.A())

	nPaired := (spec.Ports - 1) / 2 * 2
	r.hosts = make([]*fabric.Host, spec.Ports-1)
	for p := 1; p <= nPaired; p++ {
		l := netem.NewLink(netem.LinkConfig{Name: fmt.Sprintf("%s-p%d", spec.Name, p)})
		r.links = append(r.links, l)
		r.sw.AttachPort(p, l.A())
		h := fabric.NewHost(fmt.Sprintf("%s-h%d", spec.Name, p), hostMAC(idx, p), hostIP(idx, p), l.B())
		h.SetClock(eng.Clock())
		h.HandleUDP(trafficDstPort, func(fabric.UDPMessage) []byte {
			r.received++
			return nil
		})
		r.hosts[p-1] = h
	}
	// Seed static ARP between partners, both directions: resolution
	// must never block the event loop or inject broadcast traffic.
	for p := 1; p <= nPaired; p += 2 {
		a, b := r.hosts[p-1], r.hosts[p]
		a.AddStaticARP(b.IP, b.MAC)
		b.AddStaticARP(a.IP, a.MAC)
	}
	return r, nil
}

// tick sends one traffic round: every paired host sends one datagram
// to its partner. Links are synchronous, so all deliveries (and the
// received-counter increments) complete before tick returns.
func (r *switchRig) tick(payload []byte) {
	for p := 1; p+1 <= len(r.hosts); p += 2 {
		a, b := r.hosts[p-1], r.hosts[p]
		if a == nil || b == nil {
			continue
		}
		if err := a.SendUDP(b.IP, trafficSrcPort, trafficDstPort, payload); err != nil {
			r.sendErrs++
		} else {
			r.sent++
		}
		if err := b.SendUDP(a.IP, trafficSrcPort, trafficDstPort, payload); err != nil {
			r.sendErrs++
		} else {
			r.sent++
		}
	}
}

// deploy migrates the whole switch to HARMLESS-S4: snapshot the
// pre-wave config, drive the manager (discover -> tag -> build S4 ->
// attach trunk), bring up a master/slave controller pair, and install
// proactive per-host flows on SS_2 behind a barrier. It runs inside a
// single virtual-time callback, so no traffic interleaves with the
// reconfiguration — the wave is atomic in virtual time.
func (r *switchRig) deploy(clock netem.Clock) error {
	pre, err := r.driver.RunningConfig()
	if err != nil {
		return fmt.Errorf("migrate: %s: pre-wave snapshot: %w", r.spec.Name, err)
	}
	r.preConfig = pre

	cpCfg := controlplane.Config{EchoInterval: -1}
	r.mgr = harmless.NewManager(r.driver, nil, harmless.ManagerConfig{
		DatapathID:   0x53340000 + uint64(r.index),
		ControlPlane: cpCfg,
		Clock:        clock,
	})
	mPipeA, mPipeB := net.Pipe()
	sPipeA, sPipeB := net.Pipe()
	_, err = r.mgr.Deploy(r.trunk.B(), []controlplane.Endpoint{{Conn: mPipeA}, {Conn: sPipeA}})
	if err != nil {
		mPipeB.Close()
		sPipeB.Close()
		return err
	}
	if r.master, err = controlplane.Connect(mPipeB, cpCfg, controlplane.Events{}); err != nil {
		return fmt.Errorf("migrate: %s: master connect: %w", r.spec.Name, err)
	}
	if r.slave, err = controlplane.Connect(sPipeB, cpCfg, controlplane.Events{}); err != nil {
		return fmt.Errorf("migrate: %s: slave connect: %w", r.spec.Name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	r.gen = 1
	if _, _, err := r.master.RequestRole(ctx, openflow.RoleMaster, r.gen); err != nil {
		return fmt.Errorf("migrate: %s: master role: %w", r.spec.Name, err)
	}
	if _, _, err := r.slave.RequestRole(ctx, openflow.RoleSlave, r.gen); err != nil {
		return fmt.Errorf("migrate: %s: slave role: %w", r.spec.Name, err)
	}
	// Proactive forwarding: one dst-MAC flow per host, installed over
	// the wire through the master and barriered before any traffic
	// tick can reach SS_2. No reactive packet-in path is involved, so
	// the first post-migration frame already has a matching flow.
	for p := 1; p <= len(r.hosts); p++ {
		if r.hosts[p-1] == nil {
			continue
		}
		fm := &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Priority: 100,
			Match:    *new(openflow.Match).WithEthDst(hostMAC(r.index, p)),
			Instructions: []openflow.Instruction{
				&openflow.InstrApplyActions{Actions: []openflow.Action{
					&openflow.ActionOutput{Port: uint32(p), MaxLen: 0xffff},
				}},
			},
		}
		if err := r.master.FlowMod(fm); err != nil {
			return fmt.Errorf("migrate: %s: flow for port %d: %w", r.spec.Name, p, err)
		}
	}
	if err := r.master.AwaitBarrier(ctx); err != nil {
		return fmt.Errorf("migrate: %s: barrier: %w", r.spec.Name, err)
	}
	r.deployed = true
	r.serverAlive = true
	return nil
}

// killServer simulates the wave's commodity server dying: frames the
// legacy switch sends up the trunk disappear into a counter, and both
// controller channels drop. The management plane (CLI) is unaffected —
// that is what rollback runs over.
func (r *switchRig) killServer() {
	r.serverAlive = false
	r.trunk.B().SetReceiver(func([]byte) { r.deadTrunkRx++ })
	if r.master != nil {
		r.master.Close()
		r.master = nil
	}
	if r.slave != nil {
		r.slave.Close()
		r.slave = nil
	}
}

// failover is the PR 5 path: the master channel dies, the slave
// promotes with a bumped generation and proves ownership with a
// barrier. Runs inside the fault's virtual-time callback.
func (r *switchRig) failover() error {
	if r.master == nil || r.slave == nil {
		return fmt.Errorf("migrate: %s: no controller pair to fail over", r.spec.Name)
	}
	r.master.Close()
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	r.gen++
	if _, _, err := r.slave.RequestRole(ctx, openflow.RoleMaster, r.gen); err != nil {
		return fmt.Errorf("migrate: %s: promote: %w", r.spec.Name, err)
	}
	if err := r.slave.AwaitBarrier(ctx); err != nil {
		return fmt.Errorf("migrate: %s: post-promote barrier: %w", r.spec.Name, err)
	}
	r.master, r.slave = r.slave, nil
	return nil
}

// healthy reports whether the migrated switch can carry traffic: the
// server is alive and the trunk port is administratively up (checked
// through the management plane, as a real campaign monitor would).
func (r *switchRig) healthy() (bool, string) {
	if !r.serverAlive {
		return false, "server down"
	}
	statuses, err := r.driver.InterfaceStatuses()
	if err != nil {
		return false, fmt.Sprintf("status query failed: %v", err)
	}
	for _, st := range statuses {
		if st.Port == r.trunkPort() && st.Status == "disabled" {
			return false, "trunk disabled"
		}
	}
	return true, ""
}

// conforms checks the committed wave against its plan through the
// management plane: every migrated port is an access port in its
// per-port VLAN and the trunk is in trunk mode.
func (r *switchRig) conforms() (bool, string) {
	plan := r.mgr.Plan()
	if plan == nil {
		return false, "no plan"
	}
	statuses, err := r.driver.InterfaceStatuses()
	if err != nil {
		return false, fmt.Sprintf("status query failed: %v", err)
	}
	byPort := make(map[int]mgmt.InterfaceStatus, len(statuses))
	for _, st := range statuses {
		byPort[st.Port] = st
	}
	for _, p := range plan.MigratedPorts() {
		st, ok := byPort[p]
		if !ok {
			return false, fmt.Sprintf("port %d missing from status", p)
		}
		if st.Mode != "access" || st.VLAN != fmt.Sprint(plan.VLANForPort[p]) {
			return false, fmt.Sprintf("port %d is %s/%s, want access/%d", p, st.Mode, st.VLAN, plan.VLANForPort[p])
		}
	}
	if st, ok := byPort[plan.TrunkPort]; !ok || st.Mode != "trunk" {
		return false, fmt.Sprintf("trunk port %d not in trunk mode", plan.TrunkPort)
	}
	return true, ""
}

// rollback returns the switch to its pre-wave legacy configuration.
// Restoration is verified separately with restoredExactly — a trunk
// still administratively down from an in-flight flap would spoil the
// comparison until the flap ends.
func (r *switchRig) rollback() error {
	if r.master != nil {
		//harmless:allow-droperr rollback abandons the OF transport; a close error cannot affect restoration, which restoredExactly verifies byte for byte
		r.master.Close()
		r.master = nil
	}
	if r.slave != nil {
		//harmless:allow-droperr abandoned like the master transport above
		r.slave.Close()
		r.slave = nil
	}
	if r.mgr != nil {
		if err := r.mgr.Rollback(); err != nil {
			return err
		}
	}
	r.deployed = false
	return nil
}

// restoredExactly compares the running config against the pre-wave
// snapshot byte for byte (the CLI renders configs deterministically, so
// string equality is a faithful restoration proof).
func (r *switchRig) restoredExactly() (bool, error) {
	post, err := r.driver.RunningConfig()
	if err != nil {
		return false, fmt.Errorf("migrate: %s: post-rollback snapshot: %w", r.spec.Name, err)
	}
	return post == r.preConfig, nil
}

// s4Switch exposes SS_2 (nil before deploy), for counter cross-checks.
func (r *switchRig) s4Switch() *softswitch.Switch {
	if r.mgr == nil || r.mgr.S4() == nil {
		return nil
	}
	return r.mgr.S4().SS2
}

// close tears the rig down regardless of errors; the returned error
// aggregates transport and driver close failures.
func (r *switchRig) close() error {
	var errs []error
	if r.master != nil {
		errs = append(errs, r.master.Close())
	}
	if r.slave != nil {
		errs = append(errs, r.slave.Close())
	}
	if r.mgr != nil && r.mgr.S4() != nil {
		r.mgr.S4().Stop()
	}
	if r.driver != nil {
		errs = append(errs, r.driver.Close())
	}
	for _, l := range r.links {
		l.Close()
	}
	if r.trunk != nil {
		r.trunk.Close()
	}
	return errors.Join(errs...)
}
