// Command costcalc regenerates the cost-effectiveness analysis (E4):
// the per-SDN-port CAPEX of the three migration strategies over a
// range of port counts.
//
// With -campaign it prices a migration campaign spec instead: the
// per-wave cumulative-spend table and the crossover point against
// rip-and-replace, through the same planner cmd/migrate executes.
//
// Usage:
//
//	costcalc [-ports 8,24,48,96,192,384] [-greenfield]
//	         [-cots-price N] [-server-price N] [-legacy-price N]
//	costcalc -campaign examples/migrate/campaign.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/harmless-sdn/harmless/internal/cost"
	"github.com/harmless-sdn/harmless/internal/migrate"
)

func main() {
	portsFlag := flag.String("ports", "8,24,48,96,192,384", "comma-separated access port counts")
	greenfield := flag.Bool("greenfield", false, "price legacy switches in (from-scratch build)")
	cotsPrice := flag.Float64("cots-price", 0, "override COTS SDN switch price")
	serverPrice := flag.Float64("server-price", 0, "override server price")
	legacyPrice := flag.Float64("legacy-price", 0, "override legacy switch price")
	campaign := flag.String("campaign", "", "price a migration campaign spec (JSON) instead of the strategy sweep")
	flag.Parse()

	catalog := cost.DefaultCatalog2017()
	if *cotsPrice > 0 {
		catalog.COTSSDNSwitchPrice = *cotsPrice
	}
	if *serverPrice > 0 {
		catalog.ServerPrice = *serverPrice
	}
	if *legacyPrice > 0 {
		catalog.LegacySwitchPrice = *legacyPrice
	}

	if *campaign != "" {
		priceCampaign(*campaign, *cotsPrice, *serverPrice, *legacyPrice)
		return
	}

	var ports []int
	for _, s := range strings.Split(*portsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p <= 0 {
			fmt.Fprintf(os.Stderr, "costcalc: bad port count %q\n", s)
			os.Exit(2)
		}
		ports = append(ports, p)
	}

	rows, err := catalog.Sweep(ports, *greenfield)
	if err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
	mode := "migration (installed legacy gear is sunk cost)"
	if *greenfield {
		mode = "greenfield (legacy gear purchased)"
	}
	fmt.Printf("HARMLESS cost model — %s\n", mode)
	fmt.Printf("catalog: COTS $%.0f/%dp, server $%.0f/%dp, legacy $%.0f/%dp\n\n",
		catalog.COTSSDNSwitchPrice, catalog.COTSSDNSwitchPorts,
		catalog.ServerPrice, catalog.ServerPorts,
		catalog.LegacySwitchPrice, catalog.LegacySwitchPorts)
	fmt.Print(cost.FormatTable(rows))
	fmt.Printf("\nbreak-even server price at 48 ports: $%.0f (catalog: $%.0f)\n",
		catalog.BreakEvenServerPrice(48), catalog.ServerPrice)
}

// priceCampaign prints the per-wave spend table for a campaign spec,
// planned by the same code cmd/migrate executes. Command-line price
// overrides take precedence over the spec's own catalog block.
func priceCampaign(path string, cotsPrice, serverPrice, legacyPrice float64) {
	spec, err := migrate.LoadSpec(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
	catalog := spec.ResolveCatalog()
	if cotsPrice > 0 {
		catalog.COTSSDNSwitchPrice = cotsPrice
	}
	if serverPrice > 0 {
		catalog.ServerPrice = serverPrice
	}
	if legacyPrice > 0 {
		catalog.LegacySwitchPrice = legacyPrice
	}
	plan, err := migrate.PlanCampaign(spec.Switches, catalog, spec.WaveBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("HARMLESS migration campaign %q — %d switches in %d waves, budget $%.0f/wave\n",
		spec.Name, len(spec.Switches), len(plan.Waves), plan.WaveBudget)
	fmt.Printf("catalog: COTS $%.0f/%dp, server $%.0f/%dp, legacy $%.0f/%dp\n\n",
		catalog.COTSSDNSwitchPrice, catalog.COTSSDNSwitchPorts,
		catalog.ServerPrice, catalog.ServerPorts,
		catalog.LegacySwitchPrice, catalog.LegacySwitchPorts)
	fmt.Print(migrate.FormatCampaignTable(plan))
}
