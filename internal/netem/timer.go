package netem

import (
	"sync"
	"time"
)

// Timer mirrors time.Timer over an arbitrary Clock: C receives the
// clock's Now once, roughly d after creation. On a Scheduler clock the
// send happens from inside the clock's advance; on other clocks (or
// nil) it falls back to the runtime timer wheel. The channel has a
// one-slot buffer, so the send never blocks the advancing goroutine.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer; it reports whether it prevented the send.
func (t *Timer) Stop() bool { return t.stop() }

// NewTimer returns a Timer that fires once after d on c's timeline.
func NewTimer(c Clock, d time.Duration) *Timer {
	s := schedulerFor(c)
	ch := make(chan time.Time, 1)
	cancel := s.AfterFunc(d, func() {
		select {
		case ch <- s.Now():
		default:
		}
	})
	return &Timer{C: ch, stop: cancel}
}

// Ticker mirrors time.Ticker over an arbitrary Clock: C receives the
// clock's Now every d. On a Scheduler clock ticks are delivered from
// inside the clock's advance; an Advance spanning several intervals
// delivers at most one buffered tick per drain, like time.Ticker under
// a slow receiver.
type Ticker struct {
	C <-chan time.Time

	mu      sync.Mutex
	cancel  func() bool
	stopped bool
}

// Stop ends the tick stream. It does not close C.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.cancel != nil {
		t.cancel()
	}
}

// NewTicker returns a Ticker with period d on c's timeline. d must be
// positive, like time.NewTicker.
func NewTicker(c Clock, d time.Duration) *Ticker {
	if d <= 0 {
		panic("netem: non-positive Ticker interval")
	}
	s := schedulerFor(c)
	ch := make(chan time.Time, 1)
	t := &Ticker{C: ch}
	var arm func()
	arm = func() {
		t.cancel = s.AfterFunc(d, func() {
			t.mu.Lock()
			if t.stopped {
				t.mu.Unlock()
				return
			}
			arm() // re-arm first so Stop can always cancel the chain
			t.mu.Unlock()
			select {
			case ch <- s.Now():
			default:
			}
		})
	}
	t.mu.Lock()
	arm()
	t.mu.Unlock()
	return t
}

// schedulerFor adapts any Clock to a Scheduler: Schedulers pass
// through, everything else (including nil) schedules on real time.
func schedulerFor(c Clock) Scheduler {
	if s, ok := c.(Scheduler); ok && s != nil {
		return s
	}
	return RealClock{}
}
