package harmless

import (
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func TestPlanMigrationDefaults(t *testing.T) {
	p, err := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 24})
	if err != nil {
		t.Fatal(err)
	}
	if p.TrunkPort != 24 {
		t.Errorf("trunk = %d", p.TrunkPort)
	}
	if len(p.VLANForPort) != 23 {
		t.Errorf("migrated = %d", len(p.VLANForPort))
	}
	if p.VLANForPort[1] != 101 || p.VLANForPort[23] != 123 {
		t.Errorf("vlans: %v", p.VLANForPort)
	}
	if p.LegacySegment {
		t.Error("full migration must not have a legacy segment")
	}
	if got := len(p.TrunkVLANs()); got != 23 {
		t.Errorf("trunk vlans: %d", got)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestPlanMigrationPartial(t *testing.T) {
	p, err := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 8, AccessPorts: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.LegacySegment {
		t.Error("partial migration must keep a legacy segment")
	}
	if p.LegacySegmentPort != 8 {
		t.Errorf("segment port = %d", p.LegacySegmentPort)
	}
	lp := p.LogicalPorts()
	if len(lp) != 4 || lp[3] != 8 {
		t.Errorf("logical ports: %v", lp)
	}
	// Trunk must carry the native VLAN too.
	vlans := p.TrunkVLANs()
	if vlans[0] != 1 {
		t.Errorf("trunk vlans: %v", vlans)
	}
}

func TestPlanMigrationValidation(t *testing.T) {
	cases := []PlanConfig{
		{NumPorts: 1},                                           // too few ports
		{NumPorts: 8, TrunkPort: 9},                             // bad trunk
		{NumPorts: 8, AccessPorts: []int{8}},                    // trunk as access
		{NumPorts: 8, AccessPorts: []int{9}},                    // out of range
		{NumPorts: 8, AccessPorts: []int{1, 1}},                 // duplicate
		{NumPorts: 8, AccessPorts: []int{}},                     // nothing to migrate
		{NumPorts: 8, BaseVLAN: 4094, AccessPorts: []int{1}},    // VLAN overflow
		{NumPorts: 8, BaseVLAN: 4093, AccessPorts: []int{1, 2}}, // VLAN overflow on 2nd
	}
	for i, cfg := range cases {
		if _, err := PlanMigration(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Native collision: BaseVLAN 0 + port... native default 1, base
	// 100 never collides; force it.
	if _, err := PlanMigration(PlanConfig{NumPorts: 8, BaseVLAN: 1, NativeVLAN: 2, AccessPorts: []int{1}}); err == nil {
		t.Error("native collision accepted")
	}
}

func TestTranslatorRulesShape(t *testing.T) {
	p, err := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 4, AccessPorts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rules := TranslatorRules(p)
	// 2 per access port + 2 for the legacy segment.
	if len(rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(rules))
	}
	var sawTrunkIn, sawPatchIn, sawUntagged int
	for _, fm := range rules {
		if fm.Command != openflow.FlowAdd || fm.TableID != 0 {
			t.Errorf("rule shape: %s", fm)
		}
		s := fm.String()
		switch {
		case strings.Contains(s, "in_port=1,") || strings.Contains(s, "in_port=1 "):
			sawTrunkIn++
		case strings.Contains(s, "in_port=100"):
			sawPatchIn++
		}
		if strings.Contains(s, "vlan_vid=0") {
			sawUntagged++
		}
	}
	if sawPatchIn != 3 { // two access patches + legacy segment patch
		t.Errorf("patch-ingress rules: %d", sawPatchIn)
	}
}

func TestTranslatorDataplane(t *testing.T) {
	// Build an S4 for 2 access ports, drive SS_1 directly: a frame
	// tagged 101 entering the trunk must exit SS_2's logical port 1
	// untagged, and vice versa.
	plan, err := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 3, AccessPorts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := BuildS4(plan, S4Config{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	trunk := netem.NewLink(netem.LinkConfig{})
	defer trunk.Close()
	s4.AttachTrunk(trunk.B())

	// SS_2 forwards logical port 1 <-> 2 directly (stand-in for a
	// controller program).
	m12 := openflow.Match{}
	m12.WithInPort(1)
	if _, err := s4.SS2.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m12, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	// Capture what comes back on the trunk.
	var got [][]byte
	trunk.A().SetReceiver(func(f []byte) { got = append(got, f) })

	// A frame from host on access port 1 (VLAN 101 on the trunk).
	payload := pkt.Payload("fig1")
	inner, err := pkt.Serialize(
		&pkt.Ethernet{Src: pkt.MustMAC("02:00:00:00:00:01"), Dst: pkt.MustMAC("02:00:00:00:00:02"), EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: pkt.MustIPv4("10.0.0.1"), Dst: pkt.MustIPv4("10.0.0.2")},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
		&payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := pkt.PushVLAN(inner, pkt.EtherTypeDot1Q, 101)
	if err != nil {
		t.Fatal(err)
	}
	if err := trunk.A().Send(tagged); err != nil {
		t.Fatal(err)
	}

	if len(got) != 1 {
		t.Fatalf("trunk returned %d frames", len(got))
	}
	vid, ok := pkt.VLANID(got[0])
	if !ok || vid != 102 {
		t.Fatalf("hairpinned frame vid=%d ok=%v, want 102", vid, ok)
	}
	// Payload intact under the new tag.
	stripped, err := pkt.PopVLAN(got[0])
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.DecodeEthernet(stripped)
	if string(p.ApplicationPayload()) != "fig1" {
		t.Errorf("payload: %s", p)
	}
}

func TestTranslatorLegacySegmentUntagged(t *testing.T) {
	plan, err := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 4, AccessPorts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := BuildS4(plan, S4Config{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	trunk := netem.NewLink(netem.LinkConfig{})
	defer trunk.Close()
	s4.AttachTrunk(trunk.B())

	// SS_2: logical 1 <-> legacy segment (port 4).
	for _, pair := range [][2]uint32{{1, 4}, {4, 1}} {
		m := openflow.Match{}
		m.WithInPort(pair[0])
		if _, err := s4.SS2.ApplyFlowMod(&openflow.FlowMod{
			TableID: 0, Command: openflow.FlowAdd, Priority: 10,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: pair[1], MaxLen: 0xffff}},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	trunk.A().SetReceiver(func(f []byte) { got = append(got, f) })

	// Tagged 101 in -> must come back untagged (to the native VLAN).
	payload := pkt.Payload("seg")
	inner, _ := pkt.Serialize(
		&pkt.Ethernet{Src: pkt.MustMAC("02:00:00:00:00:01"), Dst: pkt.MustMAC("02:00:00:00:00:09"), EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: pkt.MustIPv4("10.0.0.1"), Dst: pkt.MustIPv4("10.0.0.9")},
		&pkt.UDP{SrcPort: 5, DstPort: 6},
		&payload,
	)
	tagged, _ := pkt.PushVLAN(inner, pkt.EtherTypeDot1Q, 101)
	_ = trunk.A().Send(tagged)
	if len(got) != 1 {
		t.Fatalf("trunk frames: %d", len(got))
	}
	if pkt.HasVLAN(got[0]) {
		t.Error("legacy-segment egress must be untagged")
	}
	// Untagged in -> back tagged 101 to the migrated port.
	got = nil
	cp := make([]byte, len(inner))
	copy(cp, inner)
	_ = trunk.A().Send(cp)
	if len(got) != 1 {
		t.Fatalf("trunk frames: %d", len(got))
	}
	if vid, ok := pkt.VLANID(got[0]); !ok || vid != 101 {
		t.Errorf("vid=%d ok=%v, want 101", vid, ok)
	}
}

func TestS4PortNumbering(t *testing.T) {
	plan, _ := PlanMigration(PlanConfig{Hostname: "sw", NumPorts: 5, AccessPorts: []int{1, 2, 3}})
	s4, err := BuildS4(plan, S4Config{})
	if err != nil {
		t.Fatal(err)
	}
	// SS_2 exposes exactly the logical ports (incl. legacy segment 5).
	ports := s4.SS2.PortNumbers()
	want := []uint32{1, 2, 3, 5}
	if len(ports) != len(want) {
		t.Fatalf("ports: %v", ports)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ports: %v, want %v", ports, want)
		}
	}
	if s4.String() == "" {
		t.Error("empty String")
	}
	// SS_1 rules count: 3 ports *2 + segment *2.
	if got := s4.SS1.Table(0).Len(); got != 8 {
		t.Errorf("translator rules: %d", got)
	}
}
