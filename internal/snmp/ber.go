package snmp

import (
	"errors"
	"fmt"
)

// BER tag bytes used by SNMPv2c.
const (
	tagInteger        = 0x02
	tagOctetString    = 0x04
	tagNull           = 0x05
	tagOID            = 0x06
	tagSequence       = 0x30
	tagIPAddress      = 0x40
	tagCounter32      = 0x41
	tagGauge32        = 0x42
	tagTimeTicks      = 0x43
	tagCounter64      = 0x46
	tagNoSuchObject   = 0x80
	tagNoSuchInstance = 0x81
	tagEndOfMibView   = 0x82
	tagGetRequest     = 0xa0
	tagGetNext        = 0xa1
	tagResponse       = 0xa2
	tagSetRequest     = 0xa3
)

var errBERTruncated = errors.New("snmp: truncated BER data")

// berWriter builds BER structures back-to-front, mirroring the packet
// serializer: values are appended to scratch buffers and wrapped with
// tag+length by the enclosing caller.
func berEncodeLength(n int) []byte {
	if n < 0x80 {
		return []byte{byte(n)}
	}
	// Long form.
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	out := make([]byte, 0, 1+len(tmp)-i)
	out = append(out, byte(0x80|(len(tmp)-i)))
	return append(out, tmp[i:]...)
}

// berWrap prefixes content with tag and length.
func berWrap(tag byte, content []byte) []byte {
	l := berEncodeLength(len(content))
	out := make([]byte, 0, 1+len(l)+len(content))
	out = append(out, tag)
	out = append(out, l...)
	return append(out, content...)
}

// berEncodeInt encodes a signed integer in the minimal two's-complement
// form BER requires.
func berEncodeInt(v int64) []byte {
	// Collect big-endian bytes.
	var tmp [9]byte
	n := 8
	u := uint64(v)
	for i := 7; i >= 0; i-- {
		tmp[i+1] = byte(u)
		u >>= 8
	}
	// Trim redundant leading bytes while preserving the sign bit.
	start := 1
	for start < n && ((tmp[start] == 0x00 && tmp[start+1]&0x80 == 0) ||
		(tmp[start] == 0xff && tmp[start+1]&0x80 != 0)) {
		start++
	}
	return append([]byte{}, tmp[start:9]...)
}

// berEncodeUint encodes an unsigned value (Counter/Gauge/TimeTicks),
// which BER still represents as a (non-negative) INTEGER body.
func berEncodeUint(v uint64) []byte {
	var tmp [9]byte // leading 0x00 if the top bit is set
	i := 9
	for {
		i--
		tmp[i] = byte(v)
		v >>= 8
		if v == 0 {
			break
		}
	}
	if tmp[i]&0x80 != 0 {
		i--
		tmp[i] = 0
	}
	return append([]byte{}, tmp[i:]...)
}

// berEncodeOID encodes an OID body (without tag/length).
func berEncodeOID(o OID) ([]byte, error) {
	if len(o) < 2 {
		return nil, fmt.Errorf("snmp: OID %v too short to encode", o)
	}
	out := []byte{byte(o[0]*40 + o[1])}
	for _, c := range o[2:] {
		out = append(out, encodeBase128(uint64(c))...)
	}
	return out, nil
}

func encodeBase128(v uint64) []byte {
	if v == 0 {
		return []byte{0}
	}
	var tmp [10]byte
	i := len(tmp)
	first := true
	for v > 0 {
		i--
		b := byte(v & 0x7f)
		if !first {
			b |= 0x80
		}
		tmp[i] = b
		first = false
		v >>= 7
	}
	return append([]byte{}, tmp[i:]...)
}

// berReader is a cursor over BER bytes.
type berReader struct {
	data []byte
	pos  int
}

// readTL reads a tag and length, returning the tag and the content
// slice (advancing past it).
func (r *berReader) readTL() (tag byte, content []byte, err error) {
	if r.pos+2 > len(r.data) {
		return 0, nil, errBERTruncated
	}
	tag = r.data[r.pos]
	r.pos++
	l := int(r.data[r.pos])
	r.pos++
	if l&0x80 != 0 {
		nbytes := l & 0x7f
		if nbytes == 0 || nbytes > 4 || r.pos+nbytes > len(r.data) {
			return 0, nil, fmt.Errorf("snmp: unsupported BER length form")
		}
		l = 0
		for i := 0; i < nbytes; i++ {
			l = l<<8 | int(r.data[r.pos])
			r.pos++
		}
	}
	if r.pos+l > len(r.data) {
		return 0, nil, errBERTruncated
	}
	content = r.data[r.pos : r.pos+l]
	r.pos += l
	return tag, content, nil
}

// expect reads a TL and verifies the tag.
func (r *berReader) expect(tag byte) ([]byte, error) {
	got, content, err := r.readTL()
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("snmp: expected tag %#x, got %#x", tag, got)
	}
	return content, nil
}

func (r *berReader) done() bool { return r.pos >= len(r.data) }

func berDecodeInt(content []byte) (int64, error) {
	if len(content) == 0 || len(content) > 8 {
		return 0, fmt.Errorf("snmp: bad INTEGER length %d", len(content))
	}
	v := int64(0)
	if content[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func berDecodeUint(content []byte) (uint64, error) {
	if len(content) == 0 || len(content) > 9 {
		return 0, fmt.Errorf("snmp: bad unsigned length %d", len(content))
	}
	if len(content) == 9 && content[0] != 0 {
		return 0, fmt.Errorf("snmp: unsigned overflow")
	}
	var v uint64
	for _, b := range content {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

func berDecodeOID(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	o := OID{uint32(content[0] / 40), uint32(content[0] % 40)}
	var acc uint64
	inRun := false
	for _, b := range content[1:] {
		acc = acc<<7 | uint64(b&0x7f)
		if acc > 0xffffffff {
			return nil, fmt.Errorf("snmp: OID component overflow")
		}
		if b&0x80 == 0 {
			o = append(o, uint32(acc))
			acc = 0
			inRun = false
		} else {
			inRun = true
		}
	}
	if inRun {
		return nil, errBERTruncated
	}
	return o, nil
}
