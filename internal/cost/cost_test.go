package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCostBasics(t *testing.T) {
	c := DefaultCatalog2017()
	// 24 ports: 1 COTS switch vs 3 servers vs 2 legacy+2 servers.
	rr, err := c.Cost(RipAndReplace, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total != 10000 {
		t.Errorf("rip&replace: %v", rr)
	}
	ps, err := c.Cost(PureSoftware, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Items["server"].Count != 3 || ps.Total != 7500 {
		t.Errorf("pure software: %v", ps)
	}
	hl, err := c.Cost(HARMLESS, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	// 24 ports / 23 usable per legacy = 2 switches (sunk) + 2 servers.
	if hl.Items["server"].Count != 2 || hl.Total != 5000 {
		t.Errorf("harmless: %v", hl)
	}
	if hl.PerPort >= rr.PerPort {
		t.Errorf("HARMLESS per-port $%.2f not below COTS $%.2f", hl.PerPort, rr.PerPort)
	}
	if hl.String() == "" || rr.String() == "" {
		t.Error("empty breakdown strings")
	}
}

func TestCostGreenfieldChargesLegacy(t *testing.T) {
	c := DefaultCatalog2017()
	sunk, _ := c.Cost(HARMLESS, 46, false)
	green, _ := c.Cost(HARMLESS, 46, true)
	if green.Total != sunk.Total+2*c.LegacySwitchPrice {
		t.Errorf("greenfield %v vs sunk %v", green.Total, sunk.Total)
	}
}

func TestCostValidation(t *testing.T) {
	c := DefaultCatalog2017()
	if _, err := c.Cost(HARMLESS, 0, false); err == nil {
		t.Error("0 ports accepted")
	}
	if _, err := c.Cost(Strategy("bogus"), 8, false); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestSweepShape(t *testing.T) {
	c := DefaultCatalog2017()
	rows, err := c.Sweep([]int{8, 24, 48, 96, 192, 384}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The paper-era shape: HARMLESS (sunk legacy) is the cheapest at
	// every scale and always saves money vs COTS; the saving depends
	// on how port counts align with device sizes (25%..75% here), so
	// assert positivity everywhere and a substantial mean.
	var meanSavings float64
	for _, r := range rows {
		if r.Winner != HARMLESS {
			t.Errorf("at %d ports winner is %s", r.Ports, r.Winner)
		}
		if r.SavingsVsCOTS <= 0 {
			t.Errorf("at %d ports HARMLESS not cheaper (savings %.0f%%)", r.Ports, r.SavingsVsCOTS*100)
		}
		meanSavings += r.SavingsVsCOTS
	}
	meanSavings /= float64(len(rows))
	if meanSavings < 0.3 {
		t.Errorf("mean savings %.0f%%, want >= 30%%", meanSavings*100)
	}
	// Monotone non-decreasing totals with port count.
	for i := 1; i < len(rows); i++ {
		if rows[i].HARMLESS.Total < rows[i-1].HARMLESS.Total {
			t.Error("HARMLESS total decreased with more ports")
		}
	}
	table := FormatTable(rows)
	if !strings.Contains(table, "harmless") || !strings.Contains(table, "384") {
		t.Errorf("table:\n%s", table)
	}
}

func TestPerPortProperty(t *testing.T) {
	c := DefaultCatalog2017()
	f := func(ports uint16) bool {
		p := int(ports%1000) + 1
		for _, s := range []Strategy{RipAndReplace, PureSoftware, HARMLESS} {
			b, err := c.Cost(s, p, false)
			if err != nil {
				return false
			}
			if math.Abs(b.PerPort*float64(p)-b.Total) > 1e-6 {
				return false
			}
			if b.Total < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakEvenServerPrice(t *testing.T) {
	c := DefaultCatalog2017()
	be := c.BreakEvenServerPrice(48)
	// 48 ports: 1 COTS ($10k) vs ceil(48/23)=3 servers; break-even at
	// 10000/3.
	want := 10000.0 / 3
	if math.Abs(be-want) > 1e-9 {
		t.Errorf("break-even %f, want %f", be, want)
	}
	// Current server price is below break-even, hence the savings.
	if c.ServerPrice >= be {
		t.Error("default catalog should sit below break-even")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {0, 8, 0}, {5, 0, 0}}
	for _, c := range cases {
		if got := ceilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestWaveCost(t *testing.T) {
	c := DefaultCatalog2017()
	b, err := c.WaveCost(2, 46)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 2*c.ServerPrice {
		t.Errorf("total %v, want %v", b.Total, 2*c.ServerPrice)
	}
	if b.Items["server"].Count != 2 || b.Items["legacy-switch (sunk)"].Count != 2 {
		t.Errorf("items: %v", b.Items)
	}
	if b.PerPort != b.Total/46 {
		t.Errorf("per-port %v", b.PerPort)
	}
	if b.Strategy != HARMLESS || b.Greenfield {
		t.Errorf("breakdown tagged wrong: %+v", b)
	}
	if _, err := c.WaveCost(0, 10); err == nil {
		t.Error("zero switches accepted")
	}
	if _, err := c.WaveCost(1, 0); err == nil {
		t.Error("zero ports accepted")
	}
}

// TestWaveCostMatchesCost proves the campaign identity the migrate
// verifier relies on: summing WaveCost over waves of catalog-standard
// switches lands bitwise on Cost(HARMLESS) for the whole port count.
func TestWaveCostMatchesCost(t *testing.T) {
	c := DefaultCatalog2017()
	for _, nSwitches := range []int{1, 2, 3, 7} {
		ports := nSwitches * c.LegacySwitchPorts
		var sum float64
		for i := 0; i < nSwitches; i++ {
			b, err := c.WaveCost(1, c.LegacySwitchPorts)
			if err != nil {
				t.Fatal(err)
			}
			sum += b.Total
		}
		whole, err := c.Cost(HARMLESS, ports, false)
		if err != nil {
			t.Fatal(err)
		}
		if sum != whole.Total {
			t.Errorf("%d switches: per-wave sum %v != whole-campaign %v", nSwitches, sum, whole.Total)
		}
	}
}
