package legacy

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// runScript feeds lines to a fresh session and returns the concatenated
// output of all commands.
func runScript(t *testing.T, srv *CLIServer, lines ...string) string {
	t.Helper()
	sess := &cliSession{srv: srv, mode: modeExec}
	var out strings.Builder
	for _, l := range lines {
		o, quit := sess.handleLine(l)
		out.WriteString(o)
		if quit {
			break
		}
	}
	return out.String()
}

func TestCLIConfigureAccessAndTrunk(t *testing.T) {
	sw := NewSwitch("sw1", 4)
	srv := NewCLIServer(sw, DialectCiscoish)
	out := runScript(t, srv,
		"enable",
		"configure terminal",
		"vlan 101",
		"name harmless-p1",
		"exit",
		"interface GigabitEthernet0/1",
		"switchport mode access",
		"switchport access vlan 101",
		"exit",
		"interface gi0/4",
		"switchport mode trunk",
		"switchport trunk allowed vlan 101,102",
		"switchport trunk native vlan 1",
		"end",
	)
	if strings.Contains(out, "% Invalid") {
		t.Fatalf("unexpected error in output: %q", out)
	}
	cfg := sw.Config()
	if cfg.Ports[1].Mode != ModeAccess || cfg.Ports[1].PVID != 101 {
		t.Errorf("port 1: %+v", cfg.Ports[1])
	}
	if cfg.Ports[4].Mode != ModeTrunk || cfg.Ports[4].PVID != 1 {
		t.Errorf("port 4: %+v", cfg.Ports[4])
	}
	if al := cfg.Ports[4].AllowedList(); len(al) != 2 || al[0] != 101 || al[1] != 102 {
		t.Errorf("allowed: %v", al)
	}
	if cfg.VLANs[101] != "harmless-p1" {
		t.Errorf("vlan name: %v", cfg.VLANs)
	}
}

func TestCLIVLANRanges(t *testing.T) {
	sw := NewSwitch("sw1", 2)
	srv := NewCLIServer(sw, DialectCiscoish)
	out := runScript(t, srv,
		"enable", "configure terminal",
		"interface gi0/2",
		"switchport mode trunk",
		"switchport trunk allowed vlan 100-103,200",
	)
	if strings.Contains(out, "%") {
		t.Fatalf("error: %q", out)
	}
	al := sw.Config().Ports[2].AllowedList()
	if len(al) != 5 || al[0] != 100 || al[3] != 103 || al[4] != 200 {
		t.Errorf("allowed: %v", al)
	}
}

func TestCLIShutdownNoShutdown(t *testing.T) {
	sw := NewSwitch("sw1", 2)
	srv := NewCLIServer(sw, DialectCiscoish)
	runScript(t, srv, "enable", "configure terminal", "interface gi0/1", "shutdown")
	if !sw.Config().Ports[1].Shutdown {
		t.Error("port not shut down")
	}
	runScript(t, srv, "enable", "configure terminal", "interface gi0/1", "no shutdown")
	if sw.Config().Ports[1].Shutdown {
		t.Error("port still shut down")
	}
}

func TestCLIHostname(t *testing.T) {
	sw := NewSwitch("sw1", 1)
	srv := NewCLIServer(sw, DialectCiscoish)
	runScript(t, srv, "enable", "conf t", "hostname core-switch")
	if sw.Hostname() != "core-switch" {
		t.Errorf("hostname = %q", sw.Hostname())
	}
}

func TestCLIShowCommands(t *testing.T) {
	sw := NewSwitch("sw1", 2)
	srv := NewCLIServer(sw, DialectCiscoish)
	_ = sw.SetPortAccess(1, 101)
	_ = sw.SetPortTrunk(2, 1, []uint16{101})
	sw.FDB().AddStatic(101, macA, 1)

	out := runScript(t, srv, "enable", "show version")
	if !strings.Contains(out, "Cisco IOS Software") {
		t.Errorf("show version: %q", out)
	}
	out = runScript(t, srv, "enable", "show running-config")
	for _, want := range []string{"hostname sw1", "switchport access vlan 101", "switchport mode trunk", "switchport trunk allowed vlan 101"} {
		if !strings.Contains(out, want) {
			t.Errorf("show run missing %q in:\n%s", want, out)
		}
	}
	out = runScript(t, srv, "enable", "show mac address-table")
	if !strings.Contains(out, "STATIC") || !strings.Contains(out, "GigabitEthernet0/1") {
		t.Errorf("show mac: %q", out)
	}
	out = runScript(t, srv, "enable", "show vlan")
	if !strings.Contains(out, "101") {
		t.Errorf("show vlan: %q", out)
	}
	out = runScript(t, srv, "enable", "show interfaces status")
	if !strings.Contains(out, "notconnect") {
		t.Errorf("show interfaces: %q", out)
	}
}

func TestCLIAristaDialect(t *testing.T) {
	sw := NewSwitch("ar1", 2, WithModel("DCS-7050T"))
	srv := NewCLIServer(sw, DialectAristaish)
	out := runScript(t, srv, "enable", "show version")
	if !strings.Contains(out, "Arista") {
		t.Errorf("show version: %q", out)
	}
	out = runScript(t, srv,
		"enable", "configure terminal",
		"interface Ethernet1",
		"switchport access vlan 55",
	)
	if strings.Contains(out, "%") {
		t.Fatalf("error: %q", out)
	}
	if sw.Config().Ports[1].PVID != 55 {
		t.Errorf("pvid: %d", sw.Config().Ports[1].PVID)
	}
	// Cisco-style interface name must NOT parse in arista dialect.
	out = runScript(t, srv, "enable", "conf t", "interface gi0/1")
	if !strings.Contains(out, "% Invalid") {
		t.Errorf("expected invalid: %q", out)
	}
}

func TestCLIEnableSecret(t *testing.T) {
	sw := NewSwitch("sec", 1)
	srv := NewCLIServer(sw, DialectCiscoish)
	srv.SetEnableSecret("s3cret")
	sess := &cliSession{srv: srv, mode: modeExec}
	if _, _ = sess.handleLine("enable"); !sess.waitingEnablePw {
		t.Fatal("expected password prompt")
	}
	out, _ := sess.handleLine("wrong")
	if !strings.Contains(out, "denied") || sess.mode != modeExec {
		t.Errorf("wrong password accepted: %q mode=%d", out, sess.mode)
	}
	_, _ = sess.handleLine("enable")
	_, _ = sess.handleLine("s3cret")
	if sess.mode != modeEnable {
		t.Error("correct password rejected")
	}
}

func TestCLIInvalidCommands(t *testing.T) {
	sw := NewSwitch("sw1", 2)
	srv := NewCLIServer(sw, DialectCiscoish)
	cases := [][]string{
		{"bogus"},
		{"enable", "bogus"},
		{"enable", "conf t", "bogus"},
		{"enable", "conf t", "interface gi0/9"}, // no such port
		{"enable", "conf t", "vlan 9999"},       // out of range
		{"enable", "conf t", "interface gi0/1", "switchport mode weird"},
		{"enable", "conf t", "interface gi0/1", "switchport trunk allowed vlan 1-x"},
		{"show"},
	}
	for _, script := range cases {
		out := runScript(t, srv, script...)
		if !strings.Contains(out, "%") {
			t.Errorf("script %v produced no error, output %q", script, out)
		}
	}
}

func TestCLIModeNavigation(t *testing.T) {
	sw := NewSwitch("sw1", 2)
	srv := NewCLIServer(sw, DialectCiscoish)
	sess := &cliSession{srv: srv, mode: modeExec}
	steps := []struct {
		line string
		mode cliMode
	}{
		{"enable", modeEnable},
		{"configure terminal", modeConfig},
		{"interface gi0/1", modeConfigIf},
		{"exit", modeConfig},
		{"vlan 10", modeConfigVLAN},
		{"end", modeEnable},
		{"disable", modeExec},
	}
	for _, s := range steps {
		_, _ = sess.handleLine(s.line)
		if sess.mode != s.mode {
			t.Fatalf("after %q mode = %d, want %d", s.line, sess.mode, s.mode)
		}
	}
	// Prompts per mode.
	sess.mode = modeConfig
	if p := sess.prompt(); !strings.Contains(p, "(config)#") {
		t.Errorf("config prompt %q", p)
	}
}

func TestCLIOverTCP(t *testing.T) {
	sw := NewSwitch("tcp-sw", 4)
	srv := NewCLIServer(sw, DialectCiscoish)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)

	// readUntil consumes bytes until the buffer ends with suffix.
	readUntil := func(suffix string) string {
		var sb strings.Builder
		buf := make([]byte, 1)
		for !strings.HasSuffix(sb.String(), suffix) {
			if _, err := r.Read(buf); err != nil {
				t.Fatalf("read: %v (so far %q)", err, sb.String())
			}
			sb.WriteByte(buf[0])
		}
		return sb.String()
	}
	readUntil("tcp-sw>")
	fmt.Fprintf(conn, "enable\n")
	readUntil("tcp-sw#")
	fmt.Fprintf(conn, "configure terminal\n")
	readUntil("(config)#")
	fmt.Fprintf(conn, "interface gi0/2\n")
	readUntil("(config-if)#")
	fmt.Fprintf(conn, "switchport access vlan 42\n")
	readUntil("(config-if)#")
	fmt.Fprintf(conn, "end\n")
	readUntil("tcp-sw#")

	if sw.Config().Ports[2].PVID != 42 {
		t.Errorf("TCP session config not applied: %+v", sw.Config().Ports[2])
	}
}

func TestParseVLANList(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"101", 1, false},
		{"101,102", 2, false},
		{"1-4", 4, false},
		{"1-4,10,20-21", 7, false},
		{"", 0, true},
		{"0", 0, true},
		{"5000", 0, true},
		{"4-1", 0, true},
		{"a,b", 0, true},
	}
	for _, c := range cases {
		got, err := parseVLANList(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseVLANList(%q) err=%v", c.in, err)
			continue
		}
		if err == nil && len(got) != c.want {
			t.Errorf("parseVLANList(%q) = %v", c.in, got)
		}
	}
}

func TestDialectHelpers(t *testing.T) {
	if DialectCiscoish.IfName(3) != "GigabitEthernet0/3" {
		t.Error("cisco ifname")
	}
	if DialectAristaish.IfName(3) != "Ethernet3" {
		t.Error("arista ifname")
	}
	if DialectCiscoish.parsePort("GigabitEthernet0/7") != 7 {
		t.Error("cisco full parse")
	}
	if DialectCiscoish.parsePort("gi0/7") != 7 {
		t.Error("cisco short parse")
	}
	if DialectAristaish.parsePort("Ethernet12") != 12 {
		t.Error("arista full parse")
	}
	if DialectAristaish.parsePort("et12") != 12 {
		t.Error("arista short parse")
	}
	if DialectCiscoish.parsePort("Ethernet1") != 0 {
		t.Error("cross-dialect parse should fail")
	}
	if DialectCiscoish.String() != "ciscoish" || DialectAristaish.String() != "aristaish" {
		t.Error("dialect strings")
	}
}
