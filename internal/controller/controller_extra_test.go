package controller_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// recorderApp counts events for dispatch tests.
type recorderApp struct {
	controller.BaseApp
	flowRemoved atomic.Int32
	portStatus  atomic.Int32
	connected   atomic.Int32
}

func (r *recorderApp) Name() string { return "recorder" }

func (r *recorderApp) SwitchConnected(*controller.SwitchHandle) { r.connected.Add(1) }

func (r *recorderApp) FlowRemoved(*controller.SwitchHandle, *openflow.FlowRemoved) {
	r.flowRemoved.Add(1)
}

func (r *recorderApp) PortStatus(*controller.SwitchHandle, *openflow.PortStatus) {
	r.portStatus.Add(1)
}

func TestFlowRemovedDispatch(t *testing.T) {
	clk := netem.NewManualClock()
	rec := &recorderApp{}
	sw := softswitch.New("fr-sw", 0x55, softswitch.WithClock(clk))
	c1, c2 := net.Pipe()
	agent := sw.StartAgent(c2, 0)
	defer agent.Stop()
	ctrl := controller.New([]controller.App{rec})
	h, err := ctrl.AttachConn(c1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.connected.Load() != 1 {
		t.Fatal("SwitchConnected not dispatched")
	}
	m := openflow.Match{}
	m.WithInPort(1)
	err = h.FlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 5, IdleTimeout: 3,
		Flags: openflow.FlowFlagSendFlowRem,
		Match: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Barrier()
	waitFor(t, "flow installed", func() bool { return sw.Table(0).Len() == 1 })
	clk.Advance(5 * time.Second)
	sw.SweepExpired()
	waitFor(t, "flow removed dispatch", func() bool { return rec.flowRemoved.Load() == 1 })
}

func TestPortStatusDispatch(t *testing.T) {
	rec := &recorderApp{}
	sw := softswitch.New("ps-sw", 0x56)
	c1, c2 := net.Pipe()
	agent := sw.StartAgent(c2, 0)
	defer agent.Stop()
	ctrl := controller.New([]controller.App{rec})
	if _, err := ctrl.AttachConn(c1); err != nil {
		t.Fatal(err)
	}
	// Attaching a port after connection emits PORT_STATUS.
	l := netem.NewLink(netem.LinkConfig{})
	defer l.Close()
	sw.AttachNetPort(7, "late-port", l.A())
	waitFor(t, "port status dispatch", func() bool { return rec.portStatus.Load() == 1 })
}

// TestControllerReconnect verifies a switch can drop its channel and
// attach to a fresh controller (failover).
func TestControllerReconnect(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	sw := softswitch.New("rc-sw", 0x57)
	l := netem.NewLink(netem.LinkConfig{})
	defer l.Close()
	sw.AttachNetPort(1, "p1", l.A())

	c1, c2 := net.Pipe()
	agent := sw.StartAgent(c2, 0)
	ctrl1 := controller.New([]controller.App{learning})
	if _, err := ctrl1.AttachConn(c1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first miss entry", func() bool { return sw.Table(0).Len() == 1 })

	// Drop the channel; the controller must forget the switch.
	agent.Stop()
	waitFor(t, "controller cleanup", func() bool {
		_, ok := ctrl1.Switch(0x57)
		return !ok
	})

	// Attach to a second controller.
	ctrl2 := controller.New([]controller.App{&apps.Learning{Table: 0}})
	d1, d2 := net.Pipe()
	agent2 := sw.StartAgent(d2, 0)
	defer agent2.Stop()
	if _, err := ctrl2.AttachConn(d1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registration", func() bool {
		_, ok := ctrl2.Switch(0x57)
		return ok
	})
}

// TestLearningPortStatusFlushesState unit-tests the app-level flush
// that makes incremental migration safe.
func TestLearningPortStatusFlushesState(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	r := newRig(t, 2, []controller.App{learning})

	// Learn both hosts.
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1, 2, "x"))
	r.inject(t, 2, udpFrame(t, mac2, mac1, ip2, ip1, 2, 1, "y"))
	waitFor(t, "learning", func() bool { return len(learning.MACTable(0x42)) == 2 })
	waitFor(t, "flows", func() bool { return r.sw.Table(0).Len() >= 2 })

	// A topology change must flush the table back to just the miss
	// entry and clear the app FDB.
	link := netem.NewLink(netem.LinkConfig{})
	defer link.Close()
	r.sw.AttachNetPort(9, "new", link.A())
	waitFor(t, "flush", func() bool {
		return len(learning.MACTable(0x42)) == 0 && r.sw.Table(0).Len() == 1
	})
}
