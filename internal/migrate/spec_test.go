package migrate

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"switches": [{"name": "edge1", "ports": 5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "campaign" || s.Seed != 1 {
		t.Errorf("defaults: name=%q seed=%d", s.Name, s.Seed)
	}
	if s.TrafficInterval.Duration != 2*time.Millisecond {
		t.Errorf("traffic interval default: %v", s.TrafficInterval.Duration)
	}
	if s.WaveSoak.Duration != 30*time.Millisecond || s.WaveGap.Duration != 10*time.Millisecond {
		t.Errorf("soak/gap defaults: %v/%v", s.WaveSoak.Duration, s.WaveGap.Duration)
	}
	if s.WaveBudget != s.ResolveCatalog().ServerPrice {
		t.Errorf("budget default: $%v", s.WaveBudget)
	}
}

func TestParseSpecFaultDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"switches": [{"name": "edge1", "ports": 5}],
		"waveSoak": "40ms",
		"faults": [{"kind": "trunkFlap", "switch": "edge1"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Faults[0]
	if f.AfterDeploy.Duration != 20*time.Millisecond {
		t.Errorf("afterDeploy default: %v, want half the soak", f.AfterDeploy.Duration)
	}
	if f.Duration.Duration != 5*time.Millisecond {
		t.Errorf("flap duration default: %v", f.Duration.Duration)
	}
}

func TestParseSpecCatalogOverride(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"switches": [{"name": "edge1", "ports": 5}],
		"catalog": {"serverPrice": 999}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ResolveCatalog().ServerPrice; got != 999 {
		t.Errorf("server price override: $%v", got)
	}
	if s.WaveBudget != 999 {
		t.Errorf("budget must default to the overridden server price, got $%v", s.WaveBudget)
	}
}

func TestParseSpecRejections(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"garbage", `{`, "spec parse"},
		{"no-switches", `{"switches": []}`, "no switches"},
		{"too-few-ports", `{"switches": [{"name": "a", "ports": 2}]}`, ">= 3"},
		{"too-many-ports", `{"switches": [{"name": "a", "ports": 999}]}`, "caps at 250"},
		{"bad-fault-kind", `{"switches": [{"name": "a", "ports": 5}], "faults": [{"kind": "meteor", "switch": "a"}]}`, "unknown kind"},
		{"bad-fault-target", `{"switches": [{"name": "a", "ports": 5}], "faults": [{"kind": "serverDown", "switch": "z"}]}`, "unknown switch"},
		{"fault-outside-soak", `{"switches": [{"name": "a", "ports": 5}], "waveSoak": "10ms", "faults": [{"kind": "serverDown", "switch": "a", "afterDeploy": "10ms"}]}`, "outside"},
	} {
		_, err := ParseSpec([]byte(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
