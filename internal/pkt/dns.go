package pkt

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS record types and classes (the subset the parental-control use
// case needs).
const (
	DNSTypeA     uint16 = 1
	DNSTypeCNAME uint16 = 5
	DNSTypeAAAA  uint16 = 28
	DNSClassIN   uint16 = 1
)

// DNS response codes.
const (
	DNSRcodeNoError  uint8 = 0
	DNSRcodeNXDomain uint8 = 3
	DNSRcodeRefused  uint8 = 5
)

// DNSQuestion is one question section entry.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSAnswer is one resource record. Only A records carry a decoded
// address; other types keep raw RDATA.
type DNSAnswer struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	A     IPv4   // valid when Type == DNSTypeA
	Data  []byte // raw RDATA for other types
}

// DNS is a DNS message (RFC 1035), supporting the query/A-answer subset
// used by the parental-control demo: compression pointers are followed
// on decode but never emitted on encode.
type DNS struct {
	ID        uint16
	QR        bool // true = response
	Opcode    uint8
	AA        bool
	TC        bool
	RD        bool
	RA        bool
	Rcode     uint8
	Questions []DNSQuestion
	Answers   []DNSAnswer
	payload   []byte
}

// LayerType implements Layer.
func (d *DNS) LayerType() LayerType { return LayerTypeDNS }

// LayerPayload implements Layer.
func (d *DNS) LayerPayload() []byte { return d.payload }

// NextLayerType implements Layer.
func (d *DNS) NextLayerType() LayerType { return LayerTypeNone }

// DecodeFromBytes implements Layer.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < 12 {
		return errTruncated(LayerTypeDNS)
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.QR = flags&0x8000 != 0
	d.Opcode = uint8(flags >> 11 & 0xf)
	d.AA = flags&0x0400 != 0
	d.TC = flags&0x0200 != 0
	d.RD = flags&0x0100 != 0
	d.RA = flags&0x0080 != 0
	d.Rcode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	// NS and AR counts parsed but records ignored.
	off := 12
	d.Questions = d.Questions[:0]
	d.Answers = d.Answers[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return err
		}
		off += n
		if off+4 > len(data) {
			return errTruncated(LayerTypeDNS)
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return err
		}
		off += n
		if off+10 > len(data) {
			return errTruncated(LayerTypeDNS)
		}
		ans := DNSAnswer{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(data[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return errTruncated(LayerTypeDNS)
		}
		rdata := data[off : off+rdlen]
		if ans.Type == DNSTypeA && rdlen == 4 {
			copy(ans.A[:], rdata)
		} else {
			ans.Data = rdata
		}
		off += rdlen
		d.Answers = append(d.Answers, ans)
	}
	d.payload = nil
	return nil
}

// decodeDNSName reads a possibly-compressed name starting at off and
// returns the dotted name and the number of bytes the name occupies at
// off (compression targets do not count).
func decodeDNSName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	consumed := 0
	jumped := false
	pos := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, &decodeError{layer: LayerTypeDNS, msg: "name compression loop"}
		}
		if pos >= len(data) {
			return "", 0, errTruncated(LayerTypeDNS)
		}
		l := int(data[pos])
		switch {
		case l == 0:
			if !jumped {
				consumed = pos - off + 1
			}
			return sb.String(), consumed, nil
		case l&0xc0 == 0xc0: // compression pointer
			if pos+1 >= len(data) {
				return "", 0, errTruncated(LayerTypeDNS)
			}
			if !jumped {
				consumed = pos - off + 2
				jumped = true
			}
			pos = int(data[pos]&0x3f)<<8 | int(data[pos+1])
		default:
			if pos+1+l > len(data) {
				return "", 0, errTruncated(LayerTypeDNS)
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[pos+1 : pos+1+l])
			pos += 1 + l
		}
	}
}

func encodeDNSName(name string) ([]byte, error) {
	if name == "" {
		return []byte{0}, nil
	}
	var out []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("pkt: bad DNS label %q", label)
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// SerializeTo implements SerializableLayer.
func (d *DNS) SerializeTo(b *SerializeBuffer) error {
	// Build into a scratch slice first (names are variable length).
	var body []byte
	for _, q := range d.Questions {
		n, err := encodeDNSName(q.Name)
		if err != nil {
			return err
		}
		body = append(body, n...)
		body = append(body, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, a := range d.Answers {
		n, err := encodeDNSName(a.Name)
		if err != nil {
			return err
		}
		body = append(body, n...)
		var rdata []byte
		if a.Type == DNSTypeA {
			rdata = a.A[:]
		} else {
			rdata = a.Data
		}
		fixed := make([]byte, 10)
		binary.BigEndian.PutUint16(fixed[0:2], a.Type)
		binary.BigEndian.PutUint16(fixed[2:4], a.Class)
		binary.BigEndian.PutUint32(fixed[4:8], a.TTL)
		binary.BigEndian.PutUint16(fixed[8:10], uint16(len(rdata)))
		body = append(body, fixed...)
		body = append(body, rdata...)
	}
	hdr := b.PrependBytes(12 + len(body))
	binary.BigEndian.PutUint16(hdr[0:2], d.ID)
	var flags uint16
	if d.QR {
		flags |= 0x8000
	}
	flags |= uint16(d.Opcode&0xf) << 11
	if d.AA {
		flags |= 0x0400
	}
	if d.TC {
		flags |= 0x0200
	}
	if d.RD {
		flags |= 0x0100
	}
	if d.RA {
		flags |= 0x0080
	}
	flags |= uint16(d.Rcode & 0xf)
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(d.Answers)))
	binary.BigEndian.PutUint16(hdr[8:10], 0)
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	copy(hdr[12:], body)
	return nil
}

// String summarizes the message for diagnostics.
func (d *DNS) String() string {
	kind := "query"
	if d.QR {
		kind = "response"
	}
	var names []string
	for _, q := range d.Questions {
		names = append(names, q.Name)
	}
	return fmt.Sprintf("DNS %s id=%d rcode=%d %s", kind, d.ID, d.Rcode, strings.Join(names, ","))
}
