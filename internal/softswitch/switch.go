// Package softswitch implements the OpenFlow 1.3 software switch that
// HARMLESS instantiates twice per migrated device: once as the
// translator (SS_1) and once as the controller-facing main switch
// (SS_2). It executes the flow-table semantics of internal/flowtable
// over frames arriving on netem ports, zero-copy patch ports, or any
// other PortBackend, and exposes the switch side of the OpenFlow
// channel (Agent).
//
// The hot-path entry point is ReceiveBatch (batch.go), which amortizes
// key extraction, cache shard locks and egress flushes over a frame
// vector; Receive is its one-frame wrapper. The datapath layers four
// lookup modes, fastest first:
//
//  1. a microflow cache (cache.go) — an OVS-style sharded exact-match
//     map from the packet's header key to a pre-resolved program,
//     revalidated against table revisions on every hit, enabled by
//     default;
//  2. a wildcard megaflow cache (megaflow.go) — one entry per
//     mask-equivalence class, probed on the packet key projected
//     through the union of the consulted tables' match masks, so a
//     churn of short-lived flows sharing a ruleset shape still hits;
//  3. the ESwitch-style compiled fast path (flowtable.Compile),
//     rebuilt lazily whenever the table version changes, opt-in via
//     WithSpecialization;
//  4. the generic priority scan of internal/flowtable.
//
// Tiers 1 and 2 compose behind the CacheTier interface (tier.go) as an
// ordered chain with pooled entries and per-shard adaptive bypass.
//
// See DESIGN.md for the full datapath walk and the cache's
// invalidation rules.
package softswitch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// DefaultNumTables is the pipeline depth advertised to controllers.
const DefaultNumTables = 4

// swPort is one datapath port: a number, counters, and the pluggable
// backend frames egress through.
type swPort struct {
	no       uint32
	name     string
	backend  PortBackend
	counters stats.PortCounters
	hwAddr   pkt.MAC
}

// Switch is one software switch instance.
type Switch struct {
	name  string
	dpid  uint64
	clock netem.Clock

	tables []*flowtable.Table
	groups *flowtable.GroupTable
	meters *flowtable.MeterTable

	portMu sync.RWMutex
	ports  map[uint32]*swPort

	specialize bool
	fast       []atomic.Pointer[fastState]

	cacheSize      int  // per-tier cache capacity; <=0 disables the chain
	megaflow       bool // wildcard megaflow tier on top of the exact tier
	adaptiveBypass bool // per-shard hit-rate bypass
	injectedTiers  []CacheTier
	cache          *cacheChain

	// telemetry, when non-nil, receives per-flow accounting from the
	// batch dispatch path. Atomic so it can be attached to a running
	// switch (harmlessd wires it after deployment build).
	telemetry atomic.Pointer[telemetry.Table]

	buffers *bufferPool

	agentMu sync.RWMutex
	agent   *Agent // non-nil once connected to a controller

	pktIns stats.Counter
	drops  stats.Counter
}

// fastState caches one table's compilation attempt.
type fastState struct {
	fp            *flowtable.FastPath
	failedVersion uint64 // version at which compilation last failed (+1 offset)
}

// Option configures a Switch.
type Option func(*Switch)

// WithClock injects a clock for deterministic timeout tests.
func WithClock(c netem.Clock) Option { return func(s *Switch) { s.clock = c } }

// WithSpecialization enables the ESwitch-style compiled fast path.
func WithSpecialization(on bool) Option { return func(s *Switch) { s.specialize = on } }

// WithMicroflowCache switches the exact-match microflow cache on or
// off (on by default).
func WithMicroflowCache(on bool) Option {
	return func(s *Switch) {
		if on {
			s.cacheSize = DefaultMicroflowCacheSize
		} else {
			s.cacheSize = 0
		}
	}
}

// WithMicroflowCacheSize bounds each cache tier to roughly n entries
// (n <= 0 disables the cache chain).
func WithMicroflowCacheSize(n int) Option { return func(s *Switch) { s.cacheSize = n } }

// WithMegaflowCache switches the wildcard megaflow tier on or off (on
// by default; the exact-match tier is governed by WithMicroflowCache).
func WithMegaflowCache(on bool) Option { return func(s *Switch) { s.megaflow = on } }

// WithAdaptiveBypass switches the per-shard hit-rate bypass on or off
// (on by default). With it off the chain records and installs on every
// miss, whatever the hit rate — the right setting for alloc-profile
// tests and workloads known to be cache-friendly.
func WithAdaptiveBypass(on bool) Option { return func(s *Switch) { s.adaptiveBypass = on } }

// WithCacheTiers replaces the default tier stack (exact microflow +
// wildcard megaflow) with an explicit ordered chain — the injection
// point for custom CacheTier implementations and for tests. The
// chain's capacity, bypass and pooling machinery still apply.
func WithCacheTiers(tiers ...CacheTier) Option {
	return func(s *Switch) { s.injectedTiers = tiers }
}

// WithTelemetry attaches a flow-telemetry table at construction time
// (SetTelemetry attaches one to a running switch).
func WithTelemetry(t *telemetry.Table) Option {
	return func(s *Switch) { s.telemetry.Store(t) }
}

// WithNumTables sets the pipeline depth.
func WithNumTables(n int) Option {
	return func(s *Switch) {
		s.tables = nil
		for i := 0; i < n; i++ {
			s.tables = append(s.tables, flowtable.NewTable(uint8(i), s.clock))
		}
	}
}

// New creates a switch with the given datapath id.
func New(name string, dpid uint64, opts ...Option) *Switch {
	s := &Switch{
		name:           name,
		dpid:           dpid,
		clock:          netem.RealClock{},
		groups:         flowtable.NewGroupTable(),
		ports:          make(map[uint32]*swPort),
		buffers:        newBufferPool(256),
		cacheSize:      DefaultMicroflowCacheSize,
		megaflow:       true,
		adaptiveBypass: true,
	}
	for _, o := range opts {
		o(s)
	}
	if s.tables == nil {
		for i := 0; i < DefaultNumTables; i++ {
			s.tables = append(s.tables, flowtable.NewTable(uint8(i), s.clock))
		}
	}
	s.meters = flowtable.NewMeterTable(s.clock)
	s.fast = make([]atomic.Pointer[fastState], len(s.tables))
	if s.cacheSize > 0 {
		s.cache = newCacheChain(s.cacheSize, s.megaflow, s.adaptiveBypass, s.injectedTiers)
	}
	return s
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// DatapathID returns the datapath id.
func (s *Switch) DatapathID() uint64 { return s.dpid }

// NumTables returns the pipeline depth.
func (s *Switch) NumTables() int { return len(s.tables) }

// Table returns table id (nil if out of range).
func (s *Switch) Table(id uint8) *flowtable.Table {
	if int(id) >= len(s.tables) {
		return nil
	}
	return s.tables[id]
}

// Groups exposes the group table.
func (s *Switch) Groups() *flowtable.GroupTable { return s.groups }

// Meters exposes the meter table.
func (s *Switch) Meters() *flowtable.MeterTable { return s.meters }

// PacketIns returns the count of packets sent to the controller.
func (s *Switch) PacketIns() uint64 { return s.pktIns.Load() }

// Drops returns the count of packets dropped by the pipeline (table
// miss or empty action set).
func (s *Switch) Drops() uint64 { return s.drops.Load() }

// SetTelemetry attaches (or, with nil, detaches) a flow-telemetry
// table. Frames dispatched after the store are accounted against it;
// flow records resolve lazily, so attaching mid-flight is safe.
func (s *Switch) SetTelemetry(t *telemetry.Table) { s.telemetry.Store(t) }

// Telemetry returns the attached flow-telemetry table (nil if none).
func (s *Switch) Telemetry() *telemetry.Table { return s.telemetry.Load() }

// CacheStats returns a point-in-time snapshot of the cache chain's
// aggregated counters (hits summed over tiers, misses and bypasses at
// chain level), or nil when the cache is disabled.
func (s *Switch) CacheStats() *stats.CacheCounters {
	if s.cache == nil {
		return nil
	}
	return s.cache.statsSnapshot()
}

// CacheTierStats is one tier's identity and counters, snapshotted for
// diagnostics (/stats in harmlessd).
type CacheTierStats struct {
	Name          string `json:"name"`
	Exact         bool   `json:"exact"`
	Len           int    `json:"len"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Inserts       uint64 `json:"inserts"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
}

// CacheTierStats snapshots each tier of the cache chain in probe order
// (nil when the cache is disabled).
func (s *Switch) CacheTierStats() []CacheTierStats {
	if s.cache == nil {
		return nil
	}
	out := make([]CacheTierStats, 0, len(s.cache.tiers))
	for _, t := range s.cache.tiers {
		c := t.Counters()
		out = append(out, CacheTierStats{
			Name:          t.Name(),
			Exact:         t.Exact(),
			Len:           t.Len(),
			Hits:          c.Hits.Load(),
			Misses:        c.Misses.Load(),
			Inserts:       c.Inserts.Load(),
			Invalidations: c.Invalidations.Load(),
			Evictions:     c.Evictions.Load(),
		})
	}
	return out
}

// CacheLen returns the number of cached entries across all tiers (0
// when disabled).
func (s *Switch) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

// AttachPort binds an arbitrary PortBackend as datapath port no. The
// backend is egress only; ingress is the caller's affair (call Receive
// or ReceiveBatch with this port number).
func (s *Switch) AttachPort(no uint32, name string, be PortBackend) {
	sp := &swPort{no: no, name: name, backend: be, hwAddr: portMAC(s.dpid, no)}
	s.portMu.Lock()
	s.ports[no] = sp
	s.portMu.Unlock()
	s.notifyPortStatus(openflow.PortReasonAdd, sp)
}

// AttachNetPort binds a netem port as datapath port no, wiring both
// the per-frame and the batched receive path into the datapath.
func (s *Switch) AttachNetPort(no uint32, name string, p *netem.Port) {
	s.AttachPort(no, name, netBackend{port: p})
	p.SetReceiver(func(frame []byte) { s.Receive(no, frame) })
	p.SetBatchReceiver(func(frames [][]byte) { s.ReceiveBatch(no, frames) })
}

// ConnectPatch wires aPort on a to bPort on b with a zero-copy patch
// link (the HARMLESS-S4 internal wiring between SS_1 and SS_2).
// Frames crossing a patch port stay grouped: the dispatch loop hands
// the peer the whole per-port batch iteratively rather than recursing
// into it per frame.
func ConnectPatch(a *Switch, aPort uint32, b *Switch, bPort uint32) {
	a.AttachPort(aPort, fmt.Sprintf("patch-%s%d", b.name, bPort), &patchBackend{peer: b, peerPort: bPort})
	b.AttachPort(bPort, fmt.Sprintf("patch-%s%d", a.name, aPort), &patchBackend{peer: a, peerPort: aPort})
}

// portMAC derives a stable per-port MAC from the dpid.
func portMAC(dpid uint64, port uint32) pkt.MAC {
	return pkt.MAC{0x02, byte(dpid >> 16), byte(dpid >> 8), byte(dpid), byte(port >> 8), byte(port)}
}

// getPort looks up a datapath port.
func (s *Switch) getPort(no uint32) *swPort {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	return s.ports[no]
}

// PortNumbers returns the attached port numbers in ascending order.
func (s *Switch) PortNumbers() []uint32 {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	out := make([]uint32, 0, len(s.ports))
	for no := range s.ports {
		out = append(out, no)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PortCounters returns the datapath counters of a port (nil if absent).
func (s *Switch) PortCounters(no uint32) *stats.PortCounters {
	if p := s.getPort(no); p != nil {
		return &p.counters
	}
	return nil
}

// PortDescs renders the OpenFlow port descriptions.
func (s *Switch) PortDescs() []openflow.PortDesc {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	out := make([]openflow.PortDesc, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, openflow.PortDesc{
			PortNo: p.no, HWAddr: p.hwAddr, Name: p.name,
			State: openflow.PortStateLive, CurrSpeed: 1e6, MaxSpeed: 1e6,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PortNo < out[j].PortNo })
	return out
}

// transmit sends a frame out a datapath port by coalescing it into the
// dispatch's per-port egress vector; the port's backend sees it at the
// batch's flush. Every datapath entry point runs inside a dispatch, so
// tx is always live here.
func (s *Switch) transmit(p *swPort, frame []byte, tx *txContext) {
	tx.add(p, frame)
}

// ApplyFlowMod applies a flow-mod locally (management path and OF
// agent both funnel through here). Returned Removed entries carry
// flow-removed notifications for entries with the SendFlowRem flag.
func (s *Switch) ApplyFlowMod(fm *openflow.FlowMod) ([]flowtable.Removed, error) {
	if int(fm.TableID) >= len(s.tables) && !(fm.Command == openflow.FlowDelete && fm.TableID == openflow.TableAll) {
		return nil, fmt.Errorf("softswitch: table %d out of range", fm.TableID)
	}
	match, err := flowtable.FromOXM(&fm.Match)
	if err != nil {
		return nil, err
	}
	if err := match.ValidatePrerequisites(); err != nil {
		return nil, err
	}
	switch fm.Command {
	case openflow.FlowAdd:
		entry := &flowtable.Entry{
			Priority:     fm.Priority,
			Match:        match,
			Instructions: fm.Instructions,
			Cookie:       fm.Cookie,
			IdleTimeout:  fm.IdleTimeout,
			HardTimeout:  fm.HardTimeout,
			Flags:        fm.Flags,
		}
		return nil, s.tables[fm.TableID].Add(entry)
	case openflow.FlowModify, openflow.FlowModifyStrict:
		s.tables[fm.TableID].Modify(match, fm.Priority, fm.Command == openflow.FlowModifyStrict, fm.Instructions)
		return nil, nil
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		var removed []flowtable.Removed
		if fm.TableID == openflow.TableAll && fm.Command == openflow.FlowDelete {
			for _, t := range s.tables {
				removed = append(removed, t.Delete(match, fm.Priority, false, fm.OutPort)...)
			}
		} else {
			removed = s.tables[fm.TableID].Delete(match, fm.Priority, fm.Command == openflow.FlowDeleteStrict, fm.OutPort)
		}
		// Only report entries that asked for notification.
		var notify []flowtable.Removed
		for _, r := range removed {
			if r.Entry.Flags&openflow.FlowFlagSendFlowRem != 0 {
				notify = append(notify, r)
			}
		}
		return notify, nil
	}
	return nil, fmt.Errorf("softswitch: unknown flow-mod command %d", fm.Command)
}

// SweepExpired expires timed-out entries across all tables and returns
// the ones requesting flow-removed notification. The OF agent calls
// this periodically; tests call it directly with a manual clock.
func (s *Switch) SweepExpired() []flowtable.Removed {
	var notify, expired []flowtable.Removed
	for _, t := range s.tables {
		removed := t.ExpireEntries()
		expired = append(expired, removed...)
		for _, r := range removed {
			if r.Entry.Flags&openflow.FlowFlagSendFlowRem != 0 {
				notify = append(notify, r)
			}
		}
	}
	// A flow-table expiry ends the flows the entries carried: flush
	// exactly those flows' telemetry records so the finals (and the
	// byte/packet deltas the microflow cache accumulated since the
	// last export) reach the exporter now — exported totals stay in
	// step with the datapath counters instead of trailing by an idle
	// timeout, and unrelated flows keep their windows.
	if len(expired) > 0 {
		// Expired entries leave revision-stale cache entries behind;
		// they would lazily invalidate on next probe, but sweeping here
		// frees their pool slots promptly.
		if s.cache != nil {
			s.cache.sweep()
		}
		if tel := s.telemetry.Load(); tel != nil {
			tel.FlushWhere(func(fk telemetry.FlowKey) bool {
				k := fk.ToPacketKey()
				for _, r := range expired {
					if r.Entry.Match.Matches(&k) {
						return true
					}
				}
				return false
			}, s.clock.Now().UnixNano())
		}
	}
	if s.agent != nil && len(notify) > 0 {
		s.agentMu.RLock()
		a := s.agent
		s.agentMu.RUnlock()
		if a != nil {
			for _, r := range notify {
				a.sendFlowRemoved(r)
			}
		}
	}
	return notify
}

// notifyPortStatus forwards a port event to the controller, if any.
func (s *Switch) notifyPortStatus(reason uint8, p *swPort) {
	s.agentMu.RLock()
	a := s.agent
	s.agentMu.RUnlock()
	if a == nil {
		return
	}
	a.sendPortStatus(reason, openflow.PortDesc{
		PortNo: p.no, HWAddr: p.hwAddr, Name: p.name, State: openflow.PortStateLive,
	})
}

// FlowStats renders current flow statistics (the multipart FLOW body).
func (s *Switch) FlowStats(tableID uint8) []openflow.FlowStats {
	var out []openflow.FlowStats
	now := s.clock.Now()
	for _, t := range s.tables {
		if tableID != openflow.TableAll && t.ID() != tableID {
			continue
		}
		for _, e := range t.Entries() {
			out = append(out, openflow.FlowStats{
				TableID:      t.ID(),
				DurationSec:  uint32(now.Sub(e.Created()).Seconds()),
				Priority:     e.Priority,
				IdleTimeout:  e.IdleTimeout,
				HardTimeout:  e.HardTimeout,
				Cookie:       e.Cookie,
				PacketCount:  e.Packets(),
				ByteCount:    e.Bytes(),
				Match:        e.Match.ToOXM(),
				Instructions: e.Instrs(),
			})
		}
	}
	return out
}

// PortStats renders current port statistics.
func (s *Switch) PortStats() []openflow.PortStats {
	s.portMu.RLock()
	defer s.portMu.RUnlock()
	out := make([]openflow.PortStats, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, openflow.PortStats{
			PortNo:    p.no,
			RxPackets: p.counters.RxPackets.Load(),
			TxPackets: p.counters.TxPackets.Load(),
			RxBytes:   p.counters.RxBytes.Load(),
			TxBytes:   p.counters.TxBytes.Load(),
			RxDropped: p.counters.RxDropped.Load(),
			TxDropped: p.counters.TxDropped.Load(),
			RxErrors:  p.counters.RxErrors.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PortNo < out[j].PortNo })
	return out
}

// TableStats renders per-table statistics.
func (s *Switch) TableStats() []openflow.TableStats {
	out := make([]openflow.TableStats, 0, len(s.tables))
	for _, t := range s.tables {
		lookups, matched := t.Stats()
		out = append(out, openflow.TableStats{
			TableID: t.ID(), ActiveCount: uint32(t.Len()),
			LookupCount: lookups, MatchedCount: matched,
		})
	}
	return out
}
