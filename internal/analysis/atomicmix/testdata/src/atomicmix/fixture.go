// Package atomicmix is the single-package fixture: fields touched via
// sync/atomic must not be read or written plainly; fields never
// touched atomically are free.
package atomicmix

import "sync/atomic"

type mixed struct {
	hits  uint64
	total uint64
	cold  uint64
}

func (m *mixed) record() {
	atomic.AddUint64(&m.hits, 1)
	atomic.AddUint64(&m.total, 1)
}

func (m *mixed) reset() {
	m.hits = 0 // want "plain write to field hits"
	m.total++  // want "plain write to field total"
	m.cold = 0 // never touched atomically: plain writes are fine
}

func (m *mixed) snapshot() uint64 {
	return m.hits + atomic.LoadUint64(&m.total) // want "plain read of field hits"
}

// Handing out the address enables unsynchronized access: a read.
func (m *mixed) escape() *uint64 {
	return &m.hits // want "plain read of field hits"
}

func (m *mixed) resetHatched() {
	m.hits = 0 //harmless:allow-plain construction-time reset before the struct is published
}

func bareHatch(m *mixed) {
	m.hits = 0 //harmless:allow-plain // want "needs a reason"
}

func unusedHatch() {
	//harmless:allow-plain nothing atomic on the next line // want "unused //harmless:allow-plain directive"
	x := 1
	_ = x
}
