package snmp

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestParseOID(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"1.3.6.1.2.1.1.5.0", ".1.3.6.1.2.1.1.5.0", false},
		{".1.3.6.1", ".1.3.6.1", false},
		{"", "", true},
		{"1", "", true},
		{"3.1", "", true}, // root must be 0..2
		{"1.40", "", true},
		{"1.3.x", "", true},
	}
	for _, c := range cases {
		o, err := ParseOID(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseOID(%q) err=%v", c.in, err)
			continue
		}
		if err == nil && o.String() != c.want {
			t.Errorf("ParseOID(%q) = %s, want %s", c.in, o, c.want)
		}
	}
}

func TestOIDCmpAndPrefix(t *testing.T) {
	a := MustOID("1.3.6.1.2.1")
	b := MustOID("1.3.6.1.2.1.1")
	c := MustOID("1.3.6.1.4")
	if a.Cmp(b) >= 0 || b.Cmp(a) <= 0 {
		t.Error("prefix ordering")
	}
	if a.Cmp(a.Clone()) != 0 {
		t.Error("self compare")
	}
	if b.Cmp(c) >= 0 {
		t.Error("sibling ordering")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) {
		t.Error("HasPrefix")
	}
	if !a.Append(7).HasPrefix(a) {
		t.Error("Append/HasPrefix")
	}
}

func TestBERIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := berEncodeInt(v)
		dec, err := berDecodeInt(enc)
		return err == nil && dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Specific boundary values.
	for _, v := range []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1<<31 - 1, -(1 << 31), 1<<62 - 1} {
		enc := berEncodeInt(v)
		dec, err := berDecodeInt(enc)
		if err != nil || dec != v {
			t.Errorf("int %d: enc=%x dec=%d err=%v", v, enc, dec, err)
		}
	}
}

func TestBERUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := berEncodeUint(v)
		dec, err := berDecodeUint(enc)
		return err == nil && dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBEROIDRoundTrip(t *testing.T) {
	oids := []string{
		"1.3.6.1.2.1.1.1.0",
		"1.3.6.1.4.1.99999.1.2.3",
		"0.0",
		"2.25.4294967295", // max component
		"1.3.6.1.2.1.2.2.1.10.10001",
	}
	for _, s := range oids {
		o := MustOID(s)
		enc, err := berEncodeOID(o)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		dec, err := berDecodeOID(enc)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if dec.Cmp(o) != 0 {
			t.Errorf("%s round-tripped to %s", o, dec)
		}
	}
}

func TestBERLongLength(t *testing.T) {
	// An octet string > 127 bytes forces the long length form.
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	m := &Message{
		Community: "public", Type: PDUResponse, RequestID: 1,
		VarBinds: []VarBind{{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: OctetString(payload)}},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	os, ok := got.VarBinds[0].Value.(OctetString)
	if !ok || len(os) != 300 || os[299] != byte(299%256) {
		t.Errorf("long value corrupted: %T len=%d", got.VarBinds[0].Value, len(os))
	}
}

func TestMessageRoundTripAllTypes(t *testing.T) {
	m := &Message{
		Community: "private", Type: PDUSetRequest, RequestID: 0x7fffffff,
		VarBinds: []VarBind{
			{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: OctetString("hello")},
			{OID: MustOID("1.3.6.1.2.1.1.3.0"), Value: TimeTicks(12345)},
			{OID: MustOID("1.3.6.1.2.1.1.7.0"), Value: Integer(-42)},
			{OID: MustOID("1.3.6.1.2.1.2.2.1.10.1"), Value: Counter32(4000000000)},
			{OID: MustOID("1.3.6.1.2.1.2.2.1.5.1"), Value: Gauge32(1000000000)},
			{OID: MustOID("1.3.6.1.2.1.31.1.1.1.6.1"), Value: Counter64(1 << 40)},
			{OID: MustOID("1.3.6.1.2.1.4.20.1.1.10"), Value: IPAddress{10, 0, 0, 1}},
			{OID: MustOID("1.3.6.1.2.1.1.2.0"), Value: ObjectIdentifier(MustOID("1.3.6.1.4.1.8072"))},
			{OID: MustOID("1.3.6.1.9.9.9.0"), Value: Null{}},
		},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "private" || got.Type != PDUSetRequest || got.RequestID != 0x7fffffff {
		t.Errorf("header: %+v", got)
	}
	if len(got.VarBinds) != len(m.VarBinds) {
		t.Fatalf("varbinds: %d", len(got.VarBinds))
	}
	for i, vb := range got.VarBinds {
		if vb.OID.Cmp(m.VarBinds[i].OID) != 0 {
			t.Errorf("vb %d OID %s != %s", i, vb.OID, m.VarBinds[i].OID)
		}
	}
	if v, ok := got.VarBinds[3].Value.(Counter32); !ok || v != 4000000000 {
		t.Errorf("counter32: %v", got.VarBinds[3].Value)
	}
	if v, ok := got.VarBinds[5].Value.(Counter64); !ok || v != 1<<40 {
		t.Errorf("counter64: %v", got.VarBinds[5].Value)
	}
	if v, ok := got.VarBinds[6].Value.(IPAddress); !ok || v != (IPAddress{10, 0, 0, 1}) {
		t.Errorf("ipaddr: %v", got.VarBinds[6].Value)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMIBOrdering(t *testing.T) {
	m := NewMIB()
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.5.0"), func() Value { return OctetString("c") })
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.1.0"), func() Value { return OctetString("a") })
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.3.0"), func() Value { return OctetString("b") })
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	n := m.next(MustOID("1.3.6.1.2.1.1"))
	if n == nil || n.oid.String() != ".1.3.6.1.2.1.1.1.0" {
		t.Errorf("next from subtree root: %v", n)
	}
	n = m.next(MustOID("1.3.6.1.2.1.1.1.0"))
	if n == nil || n.oid.String() != ".1.3.6.1.2.1.1.3.0" {
		t.Errorf("next: %v", n)
	}
	if m.next(MustOID("1.3.6.1.2.1.1.5.0")) != nil {
		t.Error("next past end should be nil")
	}
	// Replacement.
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.1.0"), func() Value { return OctetString("a2") })
	if m.Len() != 3 {
		t.Errorf("replacement grew MIB to %d", m.Len())
	}
}

// newTestAgent starts an agent on a loopback UDP socket and returns a
// connected client.
func newTestAgent(t *testing.T, mib *MIB, community string) *Client {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(mib, community)
	go agent.Serve(pc) //nolint:errcheck // ends when pc closes
	t.Cleanup(func() { pc.Close() })
	client, err := Dial(pc.LocalAddr().String(), community)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	client.SetTimeout(2 * time.Second)
	return client
}

func testMIB() (*MIB, *atomic.Int64) {
	m := NewMIB()
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.1.0"), func() Value { return OctetString("HARMLESS test agent") })
	m.RegisterReadOnly(MustOID("1.3.6.1.2.1.1.3.0"), func() Value { return TimeTicks(100) })
	var mu sync.Mutex
	name := "sw1"
	m.Register(MustOID("1.3.6.1.2.1.1.5.0"),
		func() Value { mu.Lock(); defer mu.Unlock(); return OctetString(name) },
		func(v Value) error {
			s, ok := v.(OctetString)
			if !ok {
				return &SetError{Status: ErrWrongType, Reason: "want string"}
			}
			mu.Lock()
			name = string(s)
			mu.Unlock()
			return nil
		})
	writable := new(atomic.Int64)
	writable.Store(7)
	m.Register(MustOID("1.3.6.1.4.1.55555.1.0"),
		func() Value { return Integer(writable.Load()) },
		func(v Value) error {
			iv, ok := v.(Integer)
			if !ok {
				return &SetError{Status: ErrWrongType, Reason: "want integer"}
			}
			if iv < 0 {
				return &SetError{Status: ErrBadValue, Reason: "negative"}
			}
			writable.Store(int64(iv))
			return nil
		})
	for i := uint32(1); i <= 3; i++ {
		idx := i
		m.RegisterReadOnly(MustOID("1.3.6.1.2.1.2.2.1.2").Append(idx),
			func() Value { return OctetString([]byte{byte('a' + idx - 1)}) })
	}
	return m, writable
}

func TestAgentGet(t *testing.T) {
	mib, _ := testMIB()
	c := newTestAgent(t, mib, "public")
	v, err := c.GetOne(MustOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v.(OctetString)) != "HARMLESS test agent" {
		t.Errorf("sysDescr = %v", v)
	}
	// Missing object → v2c exception → GetOne error.
	if _, err := c.GetOne(MustOID("1.3.6.1.9.9.9.0")); err == nil {
		t.Error("expected error for missing object")
	}
	// Multi-OID get.
	vbs, err := c.Get(MustOID("1.3.6.1.2.1.1.1.0"), MustOID("1.3.6.1.2.1.1.3.0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 {
		t.Fatalf("varbinds: %d", len(vbs))
	}
	if _, ok := vbs[1].Value.(TimeTicks); !ok {
		t.Errorf("sysUpTime type: %T", vbs[1].Value)
	}
}

func TestAgentSet(t *testing.T) {
	mib, writable := testMIB()
	c := newTestAgent(t, mib, "private")
	if _, err := c.Set(VarBind{OID: MustOID("1.3.6.1.4.1.55555.1.0"), Value: Integer(42)}); err != nil {
		t.Fatal(err)
	}
	if writable.Load() != 42 {
		t.Errorf("writable = %d", writable.Load())
	}
	// Wrong type.
	_, err := c.Set(VarBind{OID: MustOID("1.3.6.1.4.1.55555.1.0"), Value: OctetString("no")})
	re, ok := err.(*RequestError)
	if !ok || re.Status != ErrWrongType {
		t.Errorf("want wrongType, got %v", err)
	}
	// Bad value.
	_, err = c.Set(VarBind{OID: MustOID("1.3.6.1.4.1.55555.1.0"), Value: Integer(-1)})
	re, ok = err.(*RequestError)
	if !ok || re.Status != ErrBadValue {
		t.Errorf("want badValue, got %v", err)
	}
	// Read-only object.
	_, err = c.Set(VarBind{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: OctetString("x")})
	re, ok = err.(*RequestError)
	if !ok || re.Status != ErrNotWritable {
		t.Errorf("want notWritable, got %v", err)
	}
	// Unknown object.
	_, err = c.Set(VarBind{OID: MustOID("1.3.6.1.9.9.9.0"), Value: Integer(1)})
	re, ok = err.(*RequestError)
	if !ok || re.Status != ErrNoSuchName {
		t.Errorf("want noSuchName, got %v", err)
	}
}

func TestAgentWalk(t *testing.T) {
	mib, _ := testMIB()
	c := newTestAgent(t, mib, "public")
	var got []string
	err := c.Walk(MustOID("1.3.6.1.2.1.2.2.1.2"), func(vb VarBind) error {
		got = append(got, string(vb.Value.(OctetString)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("walk got %v", got)
	}
	// Walk of whole system subtree terminates.
	count := 0
	if err := c.Walk(MustOID("1.3.6.1.2.1.1"), func(VarBind) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 { // sysDescr, sysUpTime, sysName
		t.Errorf("system walk count = %d", count)
	}
}

func TestAgentWrongCommunityIgnored(t *testing.T) {
	mib, _ := testMIB()
	c := newTestAgent(t, mib, "public")
	// Re-dial with wrong community; request must time out.
	bad := NewClient(mustDialSame(t, c), "wrong")
	bad.SetTimeout(100 * time.Millisecond)
	bad.SetRetries(0)
	if _, err := bad.Get(MustOID("1.3.6.1.2.1.1.1.0")); err != ErrTimeout {
		t.Errorf("want timeout, got %v", err)
	}
}

// mustDialSame dials a new UDP connection to the same agent address the
// given client is connected to.
func mustDialSame(t *testing.T, c *Client) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", c.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestGetNextEndOfMib(t *testing.T) {
	mib, _ := testMIB()
	c := newTestAgent(t, mib, "public")
	vbs, err := c.GetNext(MustOID("1.3.6.1.4.1.55555.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vbs[0].Value.(EndOfMibView); !ok {
		t.Errorf("expected endOfMibView, got %v", vbs[0].Value)
	}
}

func TestValueStrings(t *testing.T) {
	vals := []Value{
		Integer(5), OctetString("s"), Null{}, ObjectIdentifier(MustOID("1.3")),
		IPAddress{1, 2, 3, 4}, Counter32(1), Gauge32(2), TimeTicks(3), Counter64(4),
		NoSuchObject{}, NoSuchInstance{}, EndOfMibView{},
	}
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("%T has empty String()", v)
		}
	}
	if PDUGetRequest.String() != "GET" || PDUType(0x77).String() == "" {
		t.Error("PDU type strings")
	}
}
