package legacy

import (
	"fmt"
	"sort"
)

// PortMode is the 802.1Q role of a switch port.
type PortMode int

// Port modes.
const (
	// ModeAccess: untagged ingress classified into PVID; egress
	// untagged; tagged ingress accepted only if it matches PVID.
	ModeAccess PortMode = iota
	// ModeTrunk: tagged ingress accepted for allowed VLANs; egress
	// tagged (except the native VLAN, which travels untagged).
	ModeTrunk
)

// String implements fmt.Stringer.
func (m PortMode) String() string {
	switch m {
	case ModeAccess:
		return "access"
	case ModeTrunk:
		return "trunk"
	}
	return fmt.Sprintf("PortMode(%d)", int(m))
}

// DefaultVLAN is the factory-default VLAN of every port.
const DefaultVLAN uint16 = 1

// MaxVLAN is the highest valid 802.1Q VLAN id (4095 is reserved).
const MaxVLAN uint16 = 4094

// PortConfig is the administrative configuration of one port.
type PortConfig struct {
	Mode     PortMode
	PVID     uint16          // access VLAN, or native VLAN on a trunk
	Allowed  map[uint16]bool // trunk allowed set; nil means "all"
	Shutdown bool
	Name     string // interface name as shown by the CLI
}

// clone returns a deep copy.
func (pc *PortConfig) clone() *PortConfig {
	c := *pc
	if pc.Allowed != nil {
		c.Allowed = make(map[uint16]bool, len(pc.Allowed))
		for k, v := range pc.Allowed {
			c.Allowed[k] = v
		}
	}
	return &c
}

// allows reports whether the port carries the given VLAN.
func (pc *PortConfig) allows(vlan uint16) bool {
	switch pc.Mode {
	case ModeAccess:
		return pc.PVID == vlan
	case ModeTrunk:
		if pc.Allowed == nil {
			return true
		}
		return pc.Allowed[vlan]
	}
	return false
}

// AllowedList returns the sorted trunk allowed VLANs (nil = all).
func (pc *PortConfig) AllowedList() []uint16 {
	if pc.Allowed == nil {
		return nil
	}
	out := make([]uint16, 0, len(pc.Allowed))
	for v, ok := range pc.Allowed {
		if ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config is the administrative configuration of the whole switch.
type Config struct {
	Hostname string
	Ports    map[int]*PortConfig // keyed by 1-based port number
	VLANs    map[uint16]string   // declared VLANs with names
}

// NewDefaultConfig returns a factory-default configuration for a
// switch with n ports: all access ports in VLAN 1.
func NewDefaultConfig(hostname string, n int) *Config {
	c := &Config{
		Hostname: hostname,
		Ports:    make(map[int]*PortConfig, n),
		VLANs:    map[uint16]string{DefaultVLAN: "default"},
	}
	for i := 1; i <= n; i++ {
		c.Ports[i] = &PortConfig{
			Mode: ModeAccess,
			PVID: DefaultVLAN,
			Name: fmt.Sprintf("GigabitEthernet0/%d", i),
		}
	}
	return c
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	for n, p := range c.Ports {
		if p.PVID < 1 || p.PVID > MaxVLAN {
			return fmt.Errorf("legacy: port %d: PVID %d out of range", n, p.PVID)
		}
		for v := range p.Allowed {
			if v < 1 || v > MaxVLAN {
				return fmt.Errorf("legacy: port %d: allowed VLAN %d out of range", n, v)
			}
		}
	}
	for v := range c.VLANs {
		if v < 1 || v > MaxVLAN {
			return fmt.Errorf("legacy: VLAN %d out of range", v)
		}
	}
	return nil
}

// clone returns a deep copy.
func (c *Config) clone() *Config {
	nc := &Config{
		Hostname: c.Hostname,
		Ports:    make(map[int]*PortConfig, len(c.Ports)),
		VLANs:    make(map[uint16]string, len(c.VLANs)),
	}
	for n, p := range c.Ports {
		nc.Ports[n] = p.clone()
	}
	for v, name := range c.VLANs {
		nc.VLANs[v] = name
	}
	return nc
}

// PortNumbers returns the sorted port numbers.
func (c *Config) PortNumbers() []int {
	out := make([]int, 0, len(c.Ports))
	for n := range c.Ports {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
