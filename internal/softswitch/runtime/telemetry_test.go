package runtime_test

// Telemetry under the poll-mode runtime: N producers, N RSS-sharded
// workers, shards == workers (the single-writer configuration), with
// a concurrent flusher to prove exported totals still reconcile
// exactly with the pool's own frame accounting.

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

func TestPoolTelemetryExactUnderConcurrency(t *testing.T) {
	const workers = 4
	tab := telemetry.NewTable(telemetry.Config{
		Shards:     workers,
		SampleRate: 16,
		RingSize:   1 << 17,
	})
	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Millisecond)
	agg.Start()

	sw, _ := newForwardSwitch(t, softswitch.WithTelemetry(tab))
	pool := ssruntime.New(sw, ssruntime.Config{Workers: workers, Telemetry: tab})
	pool.Start()

	// Producers drive distinct flow sets; the RSS hash spreads them
	// over the workers, and with Shards == Workers every record is
	// only ever written by its flow's worker.
	nProducers := workers
	frames := scaled(20000)
	done := make(chan uint64, nProducers)
	for p := 0; p < nProducers; p++ {
		go func(p int) {
			gen := fabric.NewUDPGenerator(64, 64, int64(100+p))
			var sent uint64
			for i := 0; i < frames; i++ {
				f := gen.Next()
				cp := make([]byte, len(f))
				copy(cp, f)
				if pool.Dispatch(1, cp) {
					sent += uint64(len(cp))
				}
			}
			done <- sent
		}(p)
	}
	var sentBytes uint64
	for p := 0; p < nProducers; p++ {
		sentBytes += <-done
	}
	// Stop drains every admitted frame and flushes the table.
	pool.Stop()
	agg.Stop()
	agg.Flush()

	st := pool.Stats()
	gotPkts, gotBytes := col.Totals()
	if gotPkts != st.Frames || gotBytes != st.Bytes {
		t.Fatalf("collector %d pkts / %d bytes, pool processed %d / %d",
			gotPkts, gotBytes, st.Frames, st.Bytes)
	}
	if gotBytes != sentBytes {
		t.Fatalf("collector bytes %d != admitted bytes %d", gotBytes, sentBytes)
	}
	if lost := tab.Counters().RecordsLost.Load(); lost != 0 {
		t.Fatalf("drain ring overflowed (%d lost) — totals cannot be exact", lost)
	}
	if tab.Len() != 0 {
		t.Fatalf("%d records left live after Stop flush", tab.Len())
	}
}

// TestPoolIdleSweepExpiresFlows: a parked pool still advances the
// telemetry timers via the pre-park sweep.
func TestPoolIdleSweepExpiresFlows(t *testing.T) {
	tab := telemetry.NewTable(telemetry.Config{
		Shards:        2,
		IdleTimeout:   10 * time.Millisecond,
		SweepInterval: time.Millisecond,
	})
	sw, _ := newForwardSwitch(t, softswitch.WithTelemetry(tab))
	pool := ssruntime.New(sw, ssruntime.Config{
		Workers:   2,
		Telemetry: tab,
		// Short backoff so workers reach the pre-park sweep quickly.
		SpinPolls:  8,
		YieldPolls: 8,
	})
	pool.Start()
	defer pool.Stop()

	gen := fabric.NewUDPGenerator(64, 8, 42)
	for i := 0; i < 64; i++ {
		f := gen.Next()
		cp := make([]byte, len(f))
		copy(cp, f)
		for !pool.Dispatch(1, cp) {
		}
	}
	pool.Drain()
	if tab.Len() == 0 {
		t.Fatal("no live records after traffic")
	}
	// No more traffic: workers go idle, sweep, park. The flows must
	// idle out without anyone driving the datapath. Workers park after
	// one sweep, so nudge them awake periodically with a frame that
	// keeps exactly one flow alive.
	keep := fabric.NewUDPGenerator(64, 1, 7)
	deadline := time.Now().Add(5 * time.Second)
	for tab.Counters().FlowsExpired.Load() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("flows never expired: %d expired, %d live",
				tab.Counters().FlowsExpired.Load(), tab.Len())
		}
		f := keep.Next()
		cp := make([]byte, len(f))
		copy(cp, f)
		pool.Dispatch(1, cp)
		time.Sleep(2 * time.Millisecond)
	}
}
