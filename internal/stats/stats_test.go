package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Errorf("Load = %d", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("Load = %d, want 8000", c.Load())
	}
}

func TestShardedCounter(t *testing.T) {
	s := NewShardedCounter(4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	s.Shard(0).Add(5)
	s.Shard(3).Inc()
	if s.Load() != 6 {
		t.Errorf("Load = %d, want 6", s.Load())
	}
	// Clamped to at least one shard.
	if NewShardedCounter(0).Shards() != 1 {
		t.Error("zero-shard counter not clamped")
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	const writers = 8
	perWriter := 10000
	if testing.Short() {
		perWriter = 1000
	}
	s := NewShardedCounter(writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Shard(w) // each writer owns one shard, per the contract
			for i := 0; i < perWriter; i++ {
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := s.Load(); got != uint64(writers*perWriter) {
		t.Errorf("Load = %d, want %d", got, writers*perWriter)
	}
}

func TestPortCounters(t *testing.T) {
	var p PortCounters
	p.RecordRx(100)
	p.RecordRx(50)
	p.RecordTx(70)
	if p.RxPackets.Load() != 2 || p.RxBytes.Load() != 150 {
		t.Errorf("rx: %s", p.String())
	}
	if p.TxPackets.Load() != 1 || p.TxBytes.Load() != 70 {
		t.Errorf("tx: %s", p.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50000 || mean > 51000 {
		t.Errorf("mean = %f", mean)
	}
	p50 := h.Percentile(50)
	// Bucketing error tolerance: within 10% of true median 50500.
	if float64(p50) < 45000 || float64(p50) > 56000 {
		t.Errorf("p50 = %d", p50)
	}
	p99 := h.Percentile(99)
	if float64(p99) < 90000 || float64(p99) > 110000 {
		t.Errorf("p99 = %d", p99)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram()
	f := func(samples []uint32) bool {
		for _, s := range samples {
			h.Record(int64(s))
		}
		last := int64(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketError(t *testing.T) {
	// Every sample must land in a bucket whose low bound is within
	// 6.25% below the sample value.
	f := func(v uint32) bool {
		idx := bucketIndex(int64(v))
		low := bucketLow(idx)
		if low > int64(v) {
			return false
		}
		if v >= subBuckets {
			err := float64(int64(v)-low) / float64(v)
			return err < 1.0/subBuckets
		}
		return low == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketBoundaryRoundTrip(t *testing.T) {
	// Buckets beyond msb 62 are unreachable for positive int64 samples
	// (bucketLow would overflow), so stop at the last reachable index.
	maxReachable := (62-subBucketBits+1)*subBuckets + subBuckets // exclusive
	for idx := 0; idx < maxReachable; idx++ {
		low := bucketLow(idx)
		if got := bucketIndex(low); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", idx, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Errorf("negative sample: min=%d count=%d", h.Min(), h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() < 3000 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(5 * time.Microsecond)
	if h.Max() != 5000 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(int64(i))
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Errorf("Count = %d", s.Count)
	}
	if math.Abs(s.Mean-499.5) > 1 {
		t.Errorf("Mean = %f", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	d.Add("b1", 30)
	d.Add("b2", 30)
	d.Add("b3", 40)
	if d.Total() != 100 {
		t.Errorf("Total = %d", d.Total())
	}
	if d.Get("b3") != 40 {
		t.Errorf("Get(b3) = %d", d.Get("b3"))
	}
	shares := d.Shares()
	if len(shares) != 3 {
		t.Fatalf("Shares = %+v", shares)
	}
	if shares[0].Key != "b1" || shares[1].Key != "b2" || shares[2].Key != "b3" {
		t.Errorf("order: %+v", shares)
	}
	if math.Abs(shares[2].Fraction-0.4) > 1e-9 {
		t.Errorf("fraction: %+v", shares[2])
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution()
	if d.Total() != 0 || len(d.Shares()) != 0 {
		t.Error("empty distribution")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

// TestShardedCounterMergeUnderConcurrentAdd reads (merges) the counter
// while the writers are still adding: every observed value must be
// monotonically non-decreasing and never exceed the amount already
// added; the final merge must be exact. This is the contract the
// telemetry drains rely on when they snapshot per-worker shards while
// the workers keep counting.
func TestShardedCounterMergeUnderConcurrentAdd(t *testing.T) {
	const writers = 4
	perWriter := 20000
	if testing.Short() {
		perWriter = 2000
	}
	s := NewShardedCounter(writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Shard(w)
			for i := 0; i < perWriter; i++ {
				c.Inc()
			}
		}(w)
	}
	var monoErr error
	merges := 0
	go func() {
		defer close(stop)
		var last uint64
		for {
			got := s.Load()
			if got < last {
				monoErr = fmt.Errorf("merge went backwards: %d after %d", got, last)
				return
			}
			if got > uint64(writers*perWriter) {
				monoErr = fmt.Errorf("merge overshot: %d > %d", got, writers*perWriter)
				return
			}
			last = got
			merges++
			if got == uint64(writers*perWriter) {
				return
			}
		}
	}()
	wg.Wait()
	<-stop
	if monoErr != nil {
		t.Fatal(monoErr)
	}
	if merges == 0 {
		t.Fatal("reader never merged mid-add")
	}
	if got := s.Load(); got != uint64(writers*perWriter) {
		t.Fatalf("final merge = %d, want %d", got, writers*perWriter)
	}
}

func TestTelemetryCounters(t *testing.T) {
	var c TelemetryCounters
	c.FlowsCreated.Add(3)
	c.RecordsQueued.Add(2)
	c.RecordsLost.Inc()
	c.Sweeps.Inc()
	s := c.String()
	for _, want := range []string{"flows=3", "records=2", "lost=1", "sweeps=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
