package flowtable

import (
	"strings"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// MatchMask is the field-level wildcard algebra shared by the
// dataplane specializer (specialize.go) and the softswitch megaflow
// cache: a bitmask with one bit per matchable header field. It answers
// the question "which fields can influence a lookup decision?" without
// carrying the per-bit precision of a full OXM mask — a field matched
// through a prefix (e.g. nw_dst=10.0.0.0/8) sets the whole field's
// bit, which is coarser but always sound: a MatchMask may claim a
// field is consulted when only part of it is, never the reverse.
//
// The three operations are the whole algebra:
//
//   - Union merges the fields of several matches (e.g. every entry of
//     a table, or every table of a pipeline walk);
//   - Covers orders masks by wildcard breadth;
//   - Apply projects a pkt.Key onto a mask, zeroing every field the
//     mask does not consult. Two keys with equal projections are
//     indistinguishable to any match whose fields are within the mask,
//     which is the soundness property megaflow caching rests on.
type MatchMask uint32

// Field bits. MaskVLAN covers the whole VLAN constraint — tag
// presence and VID together — because Match treats them as one field
// (VLANAbsent and VLANExact both constrain it).
const (
	MaskInPort MatchMask = 1 << iota
	MaskEthDst
	MaskEthSrc
	MaskEthType
	MaskVLAN
	MaskVLANPCP
	MaskIPProto
	MaskIPSrc
	MaskIPDst
	MaskL4Src
	MaskL4Dst
	MaskICMPType
	MaskICMPCode
	MaskARPOp
	MaskARPSPA
	MaskARPTPA
)

// maskNames orders the bit names for String (LSB first, matching the
// constant declaration order).
var maskNames = [...]string{
	"in_port", "eth_dst", "eth_src", "eth_type", "vlan", "vlan_pcp",
	"ip_proto", "nw_src", "nw_dst", "tp_src", "tp_dst",
	"icmp_type", "icmp_code", "arp_op", "arp_spa", "arp_tpa",
}

// MaskOf returns the set of fields the match consults. Masked MAC/IP
// constraints conservatively claim the whole field.
func MaskOf(m *Match) MatchMask {
	var mm MatchMask
	if m.InPortSet {
		mm |= MaskInPort
	}
	if m.EthDstSet {
		mm |= MaskEthDst
	}
	if m.EthSrcSet {
		mm |= MaskEthSrc
	}
	if m.EthTypeSet {
		mm |= MaskEthType
	}
	if m.VLAN != VLANAnyMode {
		mm |= MaskVLAN
	}
	if m.VLANPCPSet {
		mm |= MaskVLANPCP
	}
	if m.IPProtoSet {
		mm |= MaskIPProto
	}
	if m.IPSrcSet {
		mm |= MaskIPSrc
	}
	if m.IPDstSet {
		mm |= MaskIPDst
	}
	if m.L4SrcSet {
		mm |= MaskL4Src
	}
	if m.L4DstSet {
		mm |= MaskL4Dst
	}
	if m.ICMPTypeSet {
		mm |= MaskICMPType
	}
	if m.ICMPCodeSet {
		mm |= MaskICMPCode
	}
	if m.ARPOpSet {
		mm |= MaskARPOp
	}
	if m.ARPSPASet {
		mm |= MaskARPSPA
	}
	if m.ARPTPASet {
		mm |= MaskARPTPA
	}
	return mm
}

// Union returns the mask consulting every field either operand does.
func (mm MatchMask) Union(o MatchMask) MatchMask { return mm | o }

// Covers reports whether every field o consults is also consulted by
// mm, i.e. mm is at least as specific as o.
func (mm MatchMask) Covers(o MatchMask) bool { return mm&o == o }

// Apply projects a key onto the mask: value fields outside the mask
// are zeroed, value fields inside it are copied verbatim. The
// presence bits (HasVLAN, HasIPv4, ...) are always retained — Match
// prerequisites branch on packet shape even for wildcarded fields, so
// keys of one equivalence class must agree on shape, not only on the
// consulted values. (IPTOS has no matchable field and is always
// projected away.)
//
// The resulting key is canonical for the packet's class under this
// mask: for any Match m with mm.Covers(MaskOf(&m)), and any two keys
// a, b with mm.Apply(a) == mm.Apply(b), m.Matches(a) == m.Matches(b).
func (mm MatchMask) Apply(k *pkt.Key) pkt.Key {
	var p pkt.Key
	p.HasVLAN = k.HasVLAN
	p.HasIPv4 = k.HasIPv4
	p.HasIPv6 = k.HasIPv6
	p.HasARP = k.HasARP
	p.HasL4 = k.HasL4
	p.HasICMP = k.HasICMP
	if mm&MaskInPort != 0 {
		p.InPort = k.InPort
	}
	if mm&MaskEthDst != 0 {
		p.EthDst = k.EthDst
	}
	if mm&MaskEthSrc != 0 {
		p.EthSrc = k.EthSrc
	}
	if mm&MaskEthType != 0 {
		p.EthType = k.EthType
	}
	if mm&MaskVLAN != 0 {
		p.VLANID = k.VLANID
	}
	if mm&MaskVLANPCP != 0 {
		p.VLANPCP = k.VLANPCP
	}
	if mm&MaskIPProto != 0 {
		p.IPProto = k.IPProto
	}
	if mm&MaskIPSrc != 0 {
		p.IPSrc = k.IPSrc
	}
	if mm&MaskIPDst != 0 {
		p.IPDst = k.IPDst
	}
	if mm&MaskL4Src != 0 {
		p.L4Src = k.L4Src
	}
	if mm&MaskL4Dst != 0 {
		p.L4Dst = k.L4Dst
	}
	if mm&MaskICMPType != 0 {
		p.ICMPType = k.ICMPType
	}
	if mm&MaskICMPCode != 0 {
		p.ICMPCode = k.ICMPCode
	}
	if mm&MaskARPOp != 0 {
		p.ARPOp = k.ARPOp
	}
	if mm&MaskARPSPA != 0 {
		p.ARPSPA = k.ARPSPA
	}
	if mm&MaskARPTPA != 0 {
		p.ARPTPA = k.ARPTPA
	}
	return p
}

// String renders the consulted field names for diagnostics.
func (mm MatchMask) String() string {
	if mm == 0 {
		return "any"
	}
	var parts []string
	for i, name := range maskNames {
		if mm&(1<<i) != 0 {
			parts = append(parts, name)
		}
	}
	return strings.Join(parts, ",")
}
