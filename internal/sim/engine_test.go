package sim

import (
	"errors"
	"testing"
	"time"
)

// The event loop drains timers in virtual order, including callbacks
// that schedule further work, without consuming wall time.
func TestEngineRunDrains(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() {
		order = append(order, 1)
		e.After(10*time.Millisecond, func() { order = append(order, 2) })
	})
	st, err := e.Run(RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drained {
		t.Error("queue not drained")
	}
	if st.Events != 3 {
		t.Errorf("Events = %d, want 3", st.Events)
	}
	if st.VirtualEnd != 30*time.Millisecond {
		t.Errorf("VirtualEnd = %v, want 30ms", st.VirtualEnd)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order %v, want [1 2 3]", order)
	}
}

// Until stops at the horizon, leaving later events pending, and pins
// virtual time to exactly the horizon.
func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(2)
	ran := 0
	e.At(5*time.Millisecond, func() { ran++ })
	e.At(50*time.Millisecond, func() { ran++ })
	st, err := e.Run(RunOpts{Until: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 || st.Events != 1 {
		t.Errorf("fired %d/%d events, want 1 before the horizon", ran, st.Events)
	}
	if st.Drained {
		t.Error("Drained with an event pending past the horizon")
	}
	if st.VirtualEnd != 20*time.Millisecond {
		t.Errorf("VirtualEnd = %v, want exactly the 20ms horizon", st.VirtualEnd)
	}
	if e.Clock().PendingTimers() != 1 {
		t.Errorf("pending = %d, want the 50ms event still queued", e.Clock().PendingTimers())
	}
}

// MaxEvents aborts a self-rescheduling loop.
func TestEngineRunMaxEvents(t *testing.T) {
	e := NewEngine(3)
	var tick func()
	tick = func() { e.After(time.Millisecond, tick) }
	e.After(time.Millisecond, tick)
	st, err := e.Run(RunOpts{MaxEvents: 1000})
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("err = %v, want ErrMaxEvents", err)
	}
	if st.Events != 1000 {
		t.Errorf("Events = %d, want 1000", st.Events)
	}
}

// Same seed, same PRNG stream and virtual schedule.
func TestEngineSeededDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(77)
		var draws []int64
		for i := 0; i < 100; i++ {
			e.After(time.Duration(i)*time.Millisecond, func() {
				draws = append(draws, e.Rand().Int63())
			})
		}
		if _, err := e.Run(RunOpts{}); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at draw %d", i)
		}
	}
}
