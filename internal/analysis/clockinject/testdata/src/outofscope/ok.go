// Package outofscope is not in clockinject's scope: wall-clock reads
// here are fine, and even an unused escape hatch must not be reported.
package outofscope

import "time"

//harmless:allow-wallclock never consulted because the package is out of scope
func wall() int64 {
	time.Sleep(0)
	return time.Now().UnixNano()
}
