module github.com/harmless-sdn/harmless

go 1.24
