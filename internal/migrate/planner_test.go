package migrate

import (
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/cost"
)

func inventory(n, ports int) []SwitchSpec {
	out := make([]SwitchSpec, n)
	for i := range out {
		out[i] = SwitchSpec{Name: string(rune('a' + i)), Ports: ports, Demand: float64(n - i)}
	}
	return out
}

func TestPlanCampaignWavePacking(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	// Budget for two servers per wave, five switches -> waves of 2,2,1.
	p, err := PlanCampaign(inventory(5, 24), cat, 2*cat.ServerPrice)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Waves) != 3 {
		t.Fatalf("waves: got %d, want 3", len(p.Waves))
	}
	for i, want := range []int{2, 2, 1} {
		if got := len(p.Waves[i].Switches); got != want {
			t.Errorf("wave %d: %d switches, want %d", i+1, got, want)
		}
	}
	if p.TotalPorts != 5*23 {
		t.Errorf("total ports: got %d, want %d", p.TotalPorts, 5*23)
	}
	if p.Waves[2].CumulativePorts != p.TotalPorts {
		t.Errorf("cumulative ports do not reach the total")
	}
}

func TestPlanCampaignDemandOrdering(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	sw := []SwitchSpec{
		{Name: "cold", Ports: 24, Demand: 1},
		{Name: "hot", Ports: 24, Demand: 9},
		{Name: "warm", Ports: 24, Demand: 5},
		{Name: "warm2", Ports: 24, Demand: 5}, // tie: keeps inventory order
	}
	p, err := PlanCampaign(sw, cat, cat.ServerPrice)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, w := range p.Waves {
		got = append(got, w.Names()...)
	}
	want := []string{"hot", "warm", "warm2", "cold"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("migration order: got %v, want %v", got, want)
		}
	}
}

// TestPlanCampaignSpendMatchesCostModel is the planner half of the cost
// conformance invariant: for catalog-sized switches the summed per-wave
// spend must land bitwise on internal/cost's one-shot HARMLESS price
// for the same fabric.
func TestPlanCampaignSpendMatchesCostModel(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	for _, n := range []int{1, 2, 3, 7} {
		p, err := PlanCampaign(inventory(n, cat.LegacySwitchPorts+1), cat, cat.ServerPrice)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := cat.Cost(cost.HARMLESS, n*cat.LegacySwitchPorts, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.TotalSpend != oneShot.Total {
			t.Errorf("n=%d: campaign spend $%v != cost model $%v", n, p.TotalSpend, oneShot.Total)
		}
		var sum float64
		for _, w := range p.Waves {
			sum += w.Cost.Total
		}
		if sum != p.TotalSpend {
			t.Errorf("n=%d: wave costs sum to $%v, plan says $%v", n, sum, p.TotalSpend)
		}
	}
}

func TestPlanCampaignCrossover(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	// 2017 street prices: HARMLESS never crosses rip-and-replace.
	p, err := PlanCampaign(inventory(4, 24), cat, cat.ServerPrice)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossoverWave != 0 {
		t.Errorf("2017 prices must never cross; got wave %d", p.CrossoverWave)
	}
	// Absurdly expensive servers flip the verdict immediately.
	cat.ServerPrice = 100 * cat.COTSSDNSwitchPrice
	p, err = PlanCampaign(inventory(4, 24), cat, cat.ServerPrice)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossoverWave != 1 {
		t.Errorf("overpriced servers: crossover at wave %d, want 1", p.CrossoverWave)
	}
}

func TestPlanCampaignValidation(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	for _, tc := range []struct {
		name   string
		sw     []SwitchSpec
		budget float64
		want   string
	}{
		{"empty", nil, cat.ServerPrice, "empty inventory"},
		{"dup", []SwitchSpec{{Name: "a", Ports: 8}, {Name: "a", Ports: 8}}, cat.ServerPrice, "duplicate"},
		{"noname", []SwitchSpec{{Ports: 8}}, cat.ServerPrice, "empty name"},
		{"tiny", []SwitchSpec{{Name: "a", Ports: 1}}, cat.ServerPrice, "at least 2"},
		{"broke", []SwitchSpec{{Name: "a", Ports: 8}}, cat.ServerPrice - 1, "does not buy"},
	} {
		_, err := PlanCampaign(tc.sw, cat, tc.budget)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFormatCampaignTable(t *testing.T) {
	cat := cost.DefaultCatalog2017()
	p, err := PlanCampaign(inventory(3, 24), cat, cat.ServerPrice)
	if err != nil {
		t.Fatal(err)
	}
	table := FormatCampaignTable(p)
	for _, want := range []string{"wave", "cum-spend", "cum-rip&repl", "crossover vs rip-and-replace: never"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
