package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Group commands (ofp_group_mod_command).
const (
	GroupAdd    uint16 = 0
	GroupModify uint16 = 1
	GroupDelete uint16 = 2
)

// Group types (ofp_group_type).
const (
	GroupTypeAll      uint8 = 0 // replicate to every bucket
	GroupTypeSelect   uint8 = 1 // pick one bucket (load balancing)
	GroupTypeIndirect uint8 = 2 // single bucket
	GroupTypeFF       uint8 = 3 // fast failover
)

// GroupAny addresses all groups in delete operations.
const GroupAny uint32 = 0xffffffff

// Bucket is one action set within a group.
type Bucket struct {
	Weight     uint16 // select groups: relative selection weight
	WatchPort  uint32 // FF groups: port whose liveness gates the bucket
	WatchGroup uint32
	Actions    []Action
}

func (b *Bucket) marshal() ([]byte, error) {
	acts, err := marshalActions(b.Actions)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16+len(acts))
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(buf)))
	binary.BigEndian.PutUint16(buf[2:4], b.Weight)
	binary.BigEndian.PutUint32(buf[4:8], b.WatchPort)
	binary.BigEndian.PutUint32(buf[8:12], b.WatchGroup)
	copy(buf[16:], acts)
	return buf, nil
}

func unmarshalBuckets(data []byte) ([]Bucket, error) {
	var out []Bucket
	for len(data) > 0 {
		if len(data) < 16 {
			return nil, fmt.Errorf("openflow: truncated bucket")
		}
		blen := int(binary.BigEndian.Uint16(data[0:2]))
		if blen < 16 || blen > len(data) {
			return nil, fmt.Errorf("openflow: bad bucket length %d", blen)
		}
		acts, err := unmarshalActions(data[16:blen])
		if err != nil {
			return nil, err
		}
		out = append(out, Bucket{
			Weight:     binary.BigEndian.Uint16(data[2:4]),
			WatchPort:  binary.BigEndian.Uint32(data[4:8]),
			WatchGroup: binary.BigEndian.Uint32(data[8:12]),
			Actions:    acts,
		})
		data = data[blen:]
	}
	return out, nil
}

// GroupMod installs, modifies or removes a group.
type GroupMod struct {
	xid
	Command   uint16
	GroupType uint8
	GroupID   uint32
	Buckets   []Bucket
}

// MsgType implements Message.
func (*GroupMod) MsgType() uint8 { return TypeGroupMod }

// Marshal implements Message.
func (m *GroupMod) Marshal() ([]byte, error) {
	var bkts bytes.Buffer
	for i := range m.Buckets {
		b, err := m.Buckets[i].marshal()
		if err != nil {
			return nil, err
		}
		bkts.Write(b)
	}
	buf := make([]byte, HeaderLen+8+bkts.Len())
	binary.BigEndian.PutUint16(buf[HeaderLen:], m.Command)
	buf[HeaderLen+2] = m.GroupType
	binary.BigEndian.PutUint32(buf[HeaderLen+4:], m.GroupID)
	copy(buf[HeaderLen+8:], bkts.Bytes())
	putHeader(buf, TypeGroupMod, m.Xid)
	return buf, nil
}

func (m *GroupMod) unmarshalBody(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("openflow: truncated group mod")
	}
	m.Command = binary.BigEndian.Uint16(body[0:2])
	m.GroupType = body[2]
	m.GroupID = binary.BigEndian.Uint32(body[4:8])
	buckets, err := unmarshalBuckets(body[8:])
	if err != nil {
		return err
	}
	m.Buckets = buckets
	return nil
}

// --- MeterMod ----------------------------------------------------------

// Meter commands.
const (
	MeterAdd    uint16 = 0
	MeterModify uint16 = 1
	MeterDelete uint16 = 2
)

// Meter flags.
const (
	MeterFlagKbps  uint16 = 1 << 0
	MeterFlagPktps uint16 = 1 << 2
)

// Meter band types.
const (
	MeterBandDrop uint16 = 1
)

// MeterBand is one rate band (only drop bands are supported).
type MeterBand struct {
	Type      uint16
	Rate      uint32 // kbps or pkt/s depending on flags
	BurstSize uint32
}

// MeterMod installs, modifies or removes a meter.
type MeterMod struct {
	xid
	Command uint16
	Flags   uint16
	MeterID uint32
	Bands   []MeterBand
}

// MsgType implements Message.
func (*MeterMod) MsgType() uint8 { return TypeMeterMod }

// Marshal implements Message.
func (m *MeterMod) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen+8+16*len(m.Bands))
	binary.BigEndian.PutUint16(buf[HeaderLen:], m.Command)
	binary.BigEndian.PutUint16(buf[HeaderLen+2:], m.Flags)
	binary.BigEndian.PutUint32(buf[HeaderLen+4:], m.MeterID)
	off := HeaderLen + 8
	for _, b := range m.Bands {
		binary.BigEndian.PutUint16(buf[off:], b.Type)
		binary.BigEndian.PutUint16(buf[off+2:], 16)
		binary.BigEndian.PutUint32(buf[off+4:], b.Rate)
		binary.BigEndian.PutUint32(buf[off+8:], b.BurstSize)
		off += 16
	}
	putHeader(buf, TypeMeterMod, m.Xid)
	return buf, nil
}

func (m *MeterMod) unmarshalBody(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("openflow: truncated meter mod")
	}
	m.Command = binary.BigEndian.Uint16(body[0:2])
	m.Flags = binary.BigEndian.Uint16(body[2:4])
	m.MeterID = binary.BigEndian.Uint32(body[4:8])
	rest := body[8:]
	for len(rest) > 0 {
		if len(rest) < 16 {
			return fmt.Errorf("openflow: truncated meter band")
		}
		blen := int(binary.BigEndian.Uint16(rest[2:4]))
		if blen < 16 || blen > len(rest) {
			return fmt.Errorf("openflow: bad meter band length %d", blen)
		}
		m.Bands = append(m.Bands, MeterBand{
			Type:      binary.BigEndian.Uint16(rest[0:2]),
			Rate:      binary.BigEndian.Uint32(rest[4:8]),
			BurstSize: binary.BigEndian.Uint32(rest[8:12]),
		})
		rest = rest[blen:]
	}
	return nil
}
