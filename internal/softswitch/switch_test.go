package softswitch

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

var (
	macA = pkt.MustMAC("02:00:00:00:00:0a")
	macB = pkt.MustMAC("02:00:00:00:00:0b")
	ipA  = pkt.MustIPv4("10.0.0.1")
	ipB  = pkt.MustIPv4("10.0.0.2")
)

type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) receiver() netem.Receiver {
	return func(f []byte) {
		c.mu.Lock()
		c.frames = append(c.frames, f)
		c.mu.Unlock()
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) last() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.frames) == 0 {
		return nil
	}
	return c.frames[len(c.frames)-1]
}

// rig attaches n netem ports (1..n) to a switch, with collectors on
// the far ends.
type rig struct {
	sw    *Switch
	hosts map[uint32]*collector
	far   map[uint32]*netem.Port
}

func newRig(t *testing.T, n int, opts ...Option) *rig {
	t.Helper()
	r := &rig{
		sw:    New("ss", 0x100, opts...),
		hosts: map[uint32]*collector{},
		far:   map[uint32]*netem.Port{},
	}
	for i := uint32(1); i <= uint32(n); i++ {
		l := netem.NewLink(netem.LinkConfig{})
		t.Cleanup(l.Close)
		r.sw.AttachNetPort(i, "p", l.A())
		col := &collector{}
		l.B().SetReceiver(col.receiver())
		r.hosts[i] = col
		r.far[i] = l.B()
	}
	return r
}

func (r *rig) inject(t *testing.T, port uint32, frame []byte) {
	t.Helper()
	if err := r.far[port].Send(frame); err != nil {
		t.Fatal(err)
	}
}

func udpFrame(t testing.TB, src, dst pkt.MAC, ipSrc, ipDst pkt.IPv4, sport, dport uint16, payload string) []byte {
	t.Helper()
	pl := pkt.Payload([]byte(payload))
	f, err := pkt.Serialize(
		&pkt.Ethernet{Src: src, Dst: dst, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ipSrc, Dst: ipDst},
		&pkt.UDP{SrcPort: sport, DstPort: dport},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// addFlow installs a flow via the management path.
func addFlow(t testing.TB, s *Switch, table uint8, priority uint16, match openflow.Match, instrs ...openflow.Instruction) {
	t.Helper()
	_, err := s.ApplyFlowMod(&openflow.FlowMod{
		TableID: table, Command: openflow.FlowAdd, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: match, Instructions: instrs,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func apply(actions ...openflow.Action) openflow.Instruction {
	return &openflow.InstrApplyActions{Actions: actions}
}

func out(port uint32) openflow.Action {
	return &openflow.ActionOutput{Port: port, MaxLen: 0xffff}
}

func TestBasicForwarding(t *testing.T) {
	r := newRig(t, 2)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x"))
	if r.hosts[2].count() != 1 {
		t.Errorf("port 2 got %d", r.hosts[2].count())
	}
	if r.hosts[1].count() != 0 {
		t.Error("reflected")
	}
}

func TestTableMissDrops(t *testing.T) {
	r := newRig(t, 2)
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x"))
	if r.hosts[2].count() != 0 {
		t.Error("forwarded without flow")
	}
	if r.sw.Drops() != 1 {
		t.Errorf("drops = %d", r.sw.Drops())
	}
}

func TestVLANPushPop(t *testing.T) {
	r := newRig(t, 2)
	// Port 1 -> push vlan 101 -> port 2.
	m1 := openflow.Match{}
	m1.WithInPort(1)
	vidVal := []byte{0x10, 0x65} // 0x1000|101
	addFlow(t, r.sw, 0, 10, m1, apply(
		&openflow.ActionPushVLAN{EtherType: pkt.EtherTypeDot1Q},
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMVLANVID, Value: vidVal}},
		out(2),
	))
	// Port 2 -> pop vlan -> port 1.
	m2 := openflow.Match{}
	m2.WithInPort(2)
	addFlow(t, r.sw, 0, 10, m2, apply(&openflow.ActionPopVLAN{}, out(1)))

	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "tag-me"))
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame")
	}
	vid, ok := pkt.VLANID(f)
	if !ok || vid != 101 {
		t.Fatalf("vid=%d ok=%v", vid, ok)
	}
	// Send it back; tag must be removed.
	r.inject(t, 2, f)
	back := r.hosts[1].last()
	if back == nil {
		t.Fatal("no return frame")
	}
	if pkt.HasVLAN(back) {
		t.Error("tag not popped")
	}
	p := pkt.DecodeEthernet(back)
	if p.UDP() == nil || string(p.ApplicationPayload()) != "tag-me" {
		t.Errorf("payload corrupted: %s", p)
	}
}

func TestGotoTablePipeline(t *testing.T) {
	r := newRig(t, 3)
	// Table 0: anything from port 1 -> goto table 1.
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, &openflow.InstrGotoTable{TableID: 1})
	// Table 1: UDP dport 80 -> port 2; everything else -> port 3.
	m80 := openflow.Match{}
	m80.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPDst(80)
	addFlow(t, r.sw, 1, 20, m80, apply(out(2)))
	addFlow(t, r.sw, 1, 1, openflow.Match{}, apply(out(3)))

	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1000, 80, "web"))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1000, 53, "dns"))
	if r.hosts[2].count() != 1 || r.hosts[3].count() != 1 {
		t.Errorf("port2=%d port3=%d", r.hosts[2].count(), r.hosts[3].count())
	}
}

func TestWriteActionsActionSet(t *testing.T) {
	r := newRig(t, 3)
	// Table 0 writes output:2, goes to table 1; table 1 replaces the
	// output with 3 via another write-actions.
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m,
		&openflow.InstrWriteActions{Actions: []openflow.Action{out(2)}},
		&openflow.InstrGotoTable{TableID: 1},
	)
	addFlow(t, r.sw, 1, 10, openflow.Match{},
		&openflow.InstrWriteActions{Actions: []openflow.Action{out(3)}},
	)
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x"))
	if r.hosts[2].count() != 0 || r.hosts[3].count() != 1 {
		t.Errorf("port2=%d port3=%d", r.hosts[2].count(), r.hosts[3].count())
	}
}

func TestClearActions(t *testing.T) {
	r := newRig(t, 2)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m,
		&openflow.InstrWriteActions{Actions: []openflow.Action{out(2)}},
		&openflow.InstrGotoTable{TableID: 1},
	)
	addFlow(t, r.sw, 1, 10, openflow.Match{}, &openflow.InstrClearActions{})
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x"))
	if r.hosts[2].count() != 0 {
		t.Error("cleared action set still executed")
	}
	if r.sw.Drops() == 0 {
		t.Error("empty action set should drop")
	}
}

func TestFloodAndInPort(t *testing.T) {
	r := newRig(t, 4)
	addFlow(t, r.sw, 0, 1, openflow.Match{}, apply(out(openflow.PortFlood)))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "f"))
	if r.hosts[1].count() != 0 {
		t.Error("flood hit ingress")
	}
	for _, p := range []uint32{2, 3, 4} {
		if r.hosts[p].count() != 1 {
			t.Errorf("port %d got %d", p, r.hosts[p].count())
		}
	}
	// IN_PORT reflection.
	m := openflow.Match{}
	m.WithInPort(2)
	addFlow(t, r.sw, 0, 10, m, apply(out(openflow.PortInPort)))
	r.inject(t, 2, udpFrame(t, macB, macA, ipB, ipA, 1, 2, "r"))
	if r.hosts[2].count() != 2 { // 1 from flood + 1 reflected
		t.Errorf("in_port reflection: %d", r.hosts[2].count())
	}
}

func TestSetFieldRewrites(t *testing.T) {
	r := newRig(t, 2)
	newDst := pkt.MustIPv4("192.168.9.9")
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMIPv4Dst, Value: newDst[:]}},
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMEthDst, Value: macB[:]}},
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMUDPDst, Value: []byte{0, 99}}},
		&openflow.ActionDecNwTTL{},
		out(2),
	))
	r.inject(t, 1, udpFrame(t, macA, pkt.MustMAC("02:00:00:00:00:99"), ipA, ipB, 1, 2, "nat"))
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame")
	}
	p := pkt.DecodeEthernet(f)
	if p.IPv4().Dst != newDst {
		t.Errorf("dst = %s", p.IPv4().Dst)
	}
	if p.Ethernet().Dst != macB {
		t.Errorf("eth dst = %s", p.Ethernet().Dst)
	}
	if p.UDP().DstPort != 99 {
		t.Errorf("udp dst = %d", p.UDP().DstPort)
	}
	if p.IPv4().TTL != 63 {
		t.Errorf("ttl = %d", p.IPv4().TTL)
	}
	// Checksums must still verify.
	if pkt.L4Checksum(p.IPv4().Src, p.IPv4().Dst, pkt.IPProtoUDP, p.IPv4().LayerPayload()) != 0 {
		t.Error("UDP checksum broken")
	}
}

func TestGroupSelectLoadBalances(t *testing.T) {
	r := newRig(t, 3)
	_ = r.sw.Groups().Apply(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
		Buckets: []openflow.Bucket{
			{Weight: 1, Actions: []openflow.Action{out(2)}},
			{Weight: 1, Actions: []openflow.Action{out(3)}},
		},
	})
	addFlow(t, r.sw, 0, 10, openflow.Match{}, apply(&openflow.ActionGroup{GroupID: 1}))
	for i := 0; i < 100; i++ {
		r.inject(t, 1, udpFrame(t, macA, macB, pkt.IPv4FromUint32(uint32(i)), ipB, uint16(i), 80, "lb"))
	}
	c2, c3 := r.hosts[2].count(), r.hosts[3].count()
	if c2+c3 != 100 {
		t.Fatalf("total %d", c2+c3)
	}
	if c2 < 20 || c3 < 20 {
		t.Errorf("imbalanced: %d/%d", c2, c3)
	}
}

func TestGroupAllReplicates(t *testing.T) {
	r := newRig(t, 3)
	_ = r.sw.Groups().Apply(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeAll, GroupID: 2,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{out(2)}},
			{Actions: []openflow.Action{out(3)}},
		},
	})
	addFlow(t, r.sw, 0, 10, openflow.Match{}, apply(&openflow.ActionGroup{GroupID: 2}))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "rep"))
	if r.hosts[2].count() != 1 || r.hosts[3].count() != 1 {
		t.Errorf("replication: %d/%d", r.hosts[2].count(), r.hosts[3].count())
	}
}

func TestMeterLimitsRate(t *testing.T) {
	clk := netem.NewManualClock()
	r := newRig(t, 2, WithClock(clk))
	_ = r.sw.Meters().Apply(&openflow.MeterMod{
		Command: openflow.MeterAdd, Flags: openflow.MeterFlagPktps, MeterID: 1,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: 10, BurstSize: 10}},
	})
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, &openflow.InstrMeter{MeterID: 1}, apply(out(2)))
	for i := 0; i < 50; i++ {
		r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "m"))
	}
	if got := r.hosts[2].count(); got != 10 {
		t.Errorf("passed %d, want 10 (burst)", got)
	}
}

func TestPatchPorts(t *testing.T) {
	// Two switches joined by a patch pair; traffic enters sw1 port 1,
	// crosses the patch, exits sw2 port 1.
	s1 := New("s1", 1)
	s2 := New("s2", 2)
	ConnectPatch(s1, 10, s2, 10)

	l1 := netem.NewLink(netem.LinkConfig{})
	defer l1.Close()
	s1.AttachNetPort(1, "in", l1.A())
	l2 := netem.NewLink(netem.LinkConfig{})
	defer l2.Close()
	s2.AttachNetPort(1, "out", l2.A())
	col := &collector{}
	l2.B().SetReceiver(col.receiver())

	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, s1, 0, 10, m, apply(out(10)))
	m2 := openflow.Match{}
	m2.WithInPort(10)
	addFlow(t, s2, 0, 10, m2, apply(out(1)))

	_ = l1.B().Send(udpFrame(t, macA, macB, ipA, ipB, 1, 2, "patch"))
	if col.count() != 1 {
		t.Fatalf("got %d frames", col.count())
	}
	if s1.PortCounters(10).TxPackets.Load() != 1 || s2.PortCounters(10).RxPackets.Load() != 1 {
		t.Error("patch counters wrong")
	}
}

func TestSpecializedMatchesGeneric(t *testing.T) {
	// The same flow program must forward identically with and without
	// specialization.
	run := func(specialize bool) int {
		r := newRig(t, 3, WithSpecialization(specialize))
		for vid := uint16(101); vid <= 102; vid++ {
			m := openflow.Match{}
			m.WithInPort(1).WithVLAN(vid)
			addFlow(t, r.sw, 0, 100, m, apply(&openflow.ActionPopVLAN{}, out(uint32(vid-99))))
		}
		base := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "s")
		tagged101, _ := pkt.PushVLAN(base, pkt.EtherTypeDot1Q, 101)
		tagged102, _ := pkt.PushVLAN(base, pkt.EtherTypeDot1Q, 102)
		r.inject(t, 1, tagged101)
		r.inject(t, 1, tagged102)
		return r.hosts[2].count()*10 + r.hosts[3].count()
	}
	if g, s := run(false), run(true); g != s || g != 11 {
		t.Errorf("generic=%d specialized=%d", g, s)
	}
}

func TestSpecializationInvalidatedByFlowMod(t *testing.T) {
	r := newRig(t, 3, WithSpecialization(true))
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "a"))
	// Redirect to port 3.
	_, err := r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{apply(out(3))},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "b"))
	if r.hosts[2].count() != 1 || r.hosts[3].count() != 1 {
		t.Errorf("stale fast path: port2=%d port3=%d", r.hosts[2].count(), r.hosts[3].count())
	}
}

func TestFlowModDeleteAndStats(t *testing.T) {
	r := newRig(t, 2)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x"))
	fs := r.sw.FlowStats(openflow.TableAll)
	if len(fs) != 1 || fs[0].PacketCount != 1 {
		t.Fatalf("flow stats: %+v", fs)
	}
	// Delete all flows.
	_, err := r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: openflow.TableAll, Command: openflow.FlowDelete,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.sw.FlowStats(openflow.TableAll)) != 0 {
		t.Error("flows not deleted")
	}
	ps := r.sw.PortStats()
	if len(ps) != 2 {
		t.Fatalf("port stats: %+v", ps)
	}
	if ps[0].RxPackets != 1 {
		t.Errorf("port 1 rx: %+v", ps[0])
	}
	ts := r.sw.TableStats()
	if len(ts) != DefaultNumTables || ts[0].LookupCount == 0 {
		t.Errorf("table stats: %+v", ts)
	}
}

func TestFlowModBadTable(t *testing.T) {
	r := newRig(t, 1)
	_, err := r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 99, Command: openflow.FlowAdd, BufferID: openflow.NoBuffer,
		OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
	})
	if err == nil {
		t.Error("table 99 accepted")
	}
}

func TestPortDescs(t *testing.T) {
	r := newRig(t, 3)
	descs := r.sw.PortDescs()
	if len(descs) != 3 || descs[0].PortNo != 1 || descs[2].PortNo != 3 {
		t.Errorf("descs: %+v", descs)
	}
}

// fakeController drives the agent over a pipe.
type fakeController struct {
	conn      *openflow.Conn
	mu        sync.Mutex
	pktIns    []*openflow.PacketIn
	removed   []*openflow.FlowRemoved
	features  *openflow.FeaturesReply
	mpReplies chan *openflow.MultipartReply
	barriers  chan uint32
}

func startFakeController(t *testing.T, sw *Switch) *fakeController {
	t.Helper()
	c1, c2 := net.Pipe()
	fc := &fakeController{
		conn:      openflow.NewConn(c1),
		mpReplies: make(chan *openflow.MultipartReply, 4),
		barriers:  make(chan uint32, 4),
	}
	agent := sw.StartAgent(c2, 0)
	t.Cleanup(agent.Stop)
	t.Cleanup(func() { fc.conn.Close() })
	fr, err := fc.conn.Handshake(fc.early)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	fc.features = fr
	go func() {
		for {
			m, err := fc.conn.Recv()
			if err != nil {
				return
			}
			fc.early(m)
		}
	}()
	return fc
}

func (fc *fakeController) early(m openflow.Message) {
	switch t := m.(type) {
	case *openflow.PacketIn:
		fc.mu.Lock()
		fc.pktIns = append(fc.pktIns, t)
		fc.mu.Unlock()
	case *openflow.FlowRemoved:
		fc.mu.Lock()
		fc.removed = append(fc.removed, t)
		fc.mu.Unlock()
	case *openflow.MultipartReply:
		fc.mpReplies <- t
	case *openflow.BarrierReply:
		fc.barriers <- t.XID()
	}
}

func (fc *fakeController) packetInCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.pktIns)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestAgentHandshakeAndPacketIn(t *testing.T) {
	r := newRig(t, 2)
	fc := startFakeController(t, r.sw)
	if fc.features.DatapathID != 0x100 || fc.features.NTables != DefaultNumTables {
		t.Errorf("features: %+v", fc.features)
	}
	// Install a table-miss entry -> controller.
	fm := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 0,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Instructions: []openflow.Instruction{apply(&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff})},
	}
	if err := fc.conn.Send(fm); err != nil {
		t.Fatal(err)
	}
	// Barrier to ensure the flow-mod is applied.
	if err := fc.conn.Send(&openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "barrier", func() bool { return len(fc.barriers) > 0 })

	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 5, 6, "to-controller"))
	waitFor(t, "packet-in", func() bool { return fc.packetInCount() == 1 })
	fc.mu.Lock()
	pi := fc.pktIns[0]
	fc.mu.Unlock()
	if port, ok := pi.InPort(); !ok || port != 1 {
		t.Errorf("in_port: %d %v", port, ok)
	}
	if pi.Reason != openflow.PacketInReasonNoMatch {
		t.Errorf("reason: %d", pi.Reason)
	}
	p := pkt.DecodeEthernet(pi.Data)
	if string(p.ApplicationPayload()) != "to-controller" {
		t.Errorf("payload: %s", p)
	}

	// Packet-out back through port 2.
	po := &openflow.PacketOut{
		BufferID: openflow.NoBuffer, InPort: openflow.PortController,
		Actions: []openflow.Action{out(2)}, Data: pi.Data,
	}
	if err := fc.conn.Send(po); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "packet-out delivery", func() bool { return r.hosts[2].count() == 1 })
}

func TestAgentMultipart(t *testing.T) {
	r := newRig(t, 2)
	fc := startFakeController(t, r.sw)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 7, m, apply(out(2)))

	_ = fc.conn.Send(&openflow.MultipartRequest{MPType: openflow.MultipartDesc})
	reply := <-fc.mpReplies
	if reply.Desc == nil || reply.Desc.Manufacturer != "HARMLESS project" {
		t.Errorf("desc: %+v", reply.Desc)
	}
	_ = fc.conn.Send(&openflow.MultipartRequest{MPType: openflow.MultipartFlow})
	reply = <-fc.mpReplies
	if len(reply.Flows) != 1 || reply.Flows[0].Priority != 7 {
		t.Errorf("flows: %+v", reply.Flows)
	}
	_ = fc.conn.Send(&openflow.MultipartRequest{MPType: openflow.MultipartPortDesc})
	reply = <-fc.mpReplies
	if len(reply.PortDescs) != 2 {
		t.Errorf("port descs: %+v", reply.PortDescs)
	}
	_ = fc.conn.Send(&openflow.MultipartRequest{MPType: openflow.MultipartPortStats})
	reply = <-fc.mpReplies
	if len(reply.Ports) != 2 {
		t.Errorf("port stats: %+v", reply.Ports)
	}
	_ = fc.conn.Send(&openflow.MultipartRequest{MPType: openflow.MultipartTable})
	reply = <-fc.mpReplies
	if len(reply.Tables) != DefaultNumTables {
		t.Errorf("tables: %+v", reply.Tables)
	}
}

func TestAgentFlowRemovedOnExpiry(t *testing.T) {
	clk := netem.NewManualClock()
	r := newRig(t, 2, WithClock(clk))
	fc := startFakeController(t, r.sw)
	m := openflow.Match{}
	m.WithInPort(1)
	fm := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10, IdleTimeout: 5,
		Flags:    openflow.FlowFlagSendFlowRem,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{apply(out(2))},
	}
	if _, err := r.sw.ApplyFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	if removed := r.sw.SweepExpired(); len(removed) != 1 {
		t.Fatalf("expired %d", len(removed))
	}
	waitFor(t, "flow-removed", func() bool {
		fc.mu.Lock()
		defer fc.mu.Unlock()
		return len(fc.removed) == 1
	})
	fc.mu.Lock()
	fr := fc.removed[0]
	fc.mu.Unlock()
	if fr.Reason != openflow.FlowRemovedIdleTimeout || fr.Priority != 10 {
		t.Errorf("flow removed: %+v", fr)
	}
}

func TestAgentRejectsBadFlowMod(t *testing.T) {
	r := newRig(t, 1)
	fc := startFakeController(t, r.sw)
	// Install a flow-mod with a bad table id; the agent must reject it
	// (observed via the unchanged table) and answer the barrier.
	fm := &openflow.FlowMod{
		TableID: 99, Command: openflow.FlowAdd,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
	}
	if err := fc.conn.Send(fm); err != nil {
		t.Fatal(err)
	}
	_ = fc.conn.Send(&openflow.BarrierRequest{})
	waitFor(t, "barrier", func() bool { return len(fc.barriers) > 0 })
	if r.sw.Table(0).Len() != 0 {
		t.Error("bad flow-mod installed something")
	}
}

func BenchmarkPipelineForward(b *testing.B) {
	for _, spec := range []struct {
		name string
		on   bool
	}{{"generic", false}, {"specialized", true}} {
		b.Run(spec.name, func(b *testing.B) {
			// Cache off: this benchmark compares the two walk modes.
			sw := New("bench", 1, WithSpecialization(spec.on), WithMicroflowCache(false))
			l1 := netem.NewLink(netem.LinkConfig{})
			defer l1.Close()
			l2 := netem.NewLink(netem.LinkConfig{})
			defer l2.Close()
			sw.AttachNetPort(1, "in", l1.A())
			sw.AttachNetPort(2, "out", l2.A())
			l2.B().SetReceiver(func([]byte) {})
			m := openflow.Match{}
			m.WithInPort(1)
			addFlow(b, sw, 0, 10, m, apply(out(2)))
			frame := udpFrame(b, macA, macB, ipA, ipB, 1, 2, "bench-payload")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Receive(1, frame)
			}
		})
	}
}

func TestFlowModPrerequisiteValidation(t *testing.T) {
	r := newRig(t, 2)
	// tcp_dst without ip_proto: rejected like real hardware.
	bad := openflow.Match{}
	bad.WithTCPDst(80)
	_, err := r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: bad, Instructions: []openflow.Instruction{apply(out(2))},
	})
	if err == nil {
		t.Error("tcp_dst without ip_proto accepted")
	}
	// ipv4_dst without eth_type: rejected.
	bad2 := openflow.Match{}
	bad2.WithIPv4Dst(ipB)
	_, err = r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: bad2, Instructions: []openflow.Instruction{apply(out(2))},
	})
	if err == nil {
		t.Error("ipv4_dst without eth_type accepted")
	}
	// The full prerequisite chain passes.
	good := openflow.Match{}
	good.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoTCP).WithTCPDst(80)
	_, err = r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 1,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: good, Instructions: []openflow.Instruction{apply(out(2))},
	})
	if err != nil {
		t.Errorf("valid prerequisite chain rejected: %v", err)
	}
}
