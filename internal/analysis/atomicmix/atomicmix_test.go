package atomicmix_test

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata/src/atomicmix", "atomicmix", atomicmix.Analyzer)
}

// mapImporter serves the fixture package to its importer and everything
// else from source.
type mapImporter struct {
	std  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := m.pkgs[path]; p != nil {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// TestCrossPackage is the point of the module pass: the atomic ops live
// in package a, the plain accesses in package b, and they must still
// meet.
func TestCrossPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	aPath := write("a.go", `package a

import "sync/atomic"

type Ctr struct{ N uint64 }

func (c *Ctr) Inc() { atomic.AddUint64(&c.N, 1) }
`)
	bPath := write("b.go", `package b

import "fix/a"

func Reset(c *a.Ctr)       { c.N = 0 }
func Peek(c *a.Ctr) uint64 { return c.N }
`)

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	pkgA, err := analysis.CheckPackage(fset, std, "fix/a", []string{aPath})
	if err != nil {
		t.Fatalf("check a: %v", err)
	}
	imp := mapImporter{std: std, pkgs: map[string]*types.Package{"fix/a": pkgA.Types}}
	pkgB, err := analysis.CheckPackage(fset, imp, "fix/b", []string{bPath})
	if err != nil {
		t.Fatalf("check b: %v", err)
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	mp := &analysis.ModulePass{}
	for _, pkg := range []*analysis.Package{pkgA, pkgB} {
		mp.Passes = append(mp.Passes, analysis.NewPass(atomicmix.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, report))
	}
	if err := atomicmix.Analyzer.RunModule(mp); err != nil {
		t.Fatal(err)
	}
	analysis.SortDiagnostics(diags)

	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for i, wantSub := range []string{"plain write to field N", "plain read of field N"} {
		if filepath.Base(diags[i].Pos.Filename) != "b.go" {
			t.Errorf("diag %d at %s, want b.go", i, diags[i].Pos.Filename)
		}
		if !strings.Contains(diags[i].Message, wantSub) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Message, wantSub)
		}
	}
}
