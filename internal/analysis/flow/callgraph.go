package flow

import (
	"go/ast"
	"go/types"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Graph is the package-local call graph: an edge per direct call or
// bare function reference (method values and function identifiers
// passed as callbacks count — the callee may run, which is what
// reachability means here). Only functions declared in the analyzed
// package appear; calls into other packages are leaves by
// construction, so the graph stays module-local without loading the
// world.
type Graph struct {
	// Decls maps each function object to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees lists, per declared function, the declared functions it
	// calls or references.
	Callees map[*types.Func][]*types.Func
}

// NewGraph builds the call graph of one pass's package.
func NewGraph(pass *analysis.Pass) *Graph {
	g := &Graph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		Callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.Decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || seen[callee] {
				return true
			}
			if _, declared := g.Decls[callee]; !declared {
				return true
			}
			seen[callee] = true
			g.Callees[fn] = append(g.Callees[fn], callee)
			return true
		})
	}
	return g
}

// Reachable returns the set of declared functions reachable from any
// function matching root (roots included).
func (g *Graph) Reachable(root func(*types.Func) bool) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if out[fn] {
			return
		}
		out[fn] = true
		for _, callee := range g.Callees[fn] {
			visit(callee)
		}
	}
	for fn := range g.Decls {
		if root(fn) {
			visit(fn)
		}
	}
	return out
}
