package hotpathalloc_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotpath", "hotpath", hotpathalloc.Analyzer)
}

func TestRequiredAnnotation(t *testing.T) {
	analysistest.Run(t, "testdata/src/required", "hotpathalloc/required", hotpathalloc.Analyzer)
}
