package harmless

import (
	"fmt"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/mgmt"
)

// flakyDriver passes through to a real CLI driver until armed, then
// fails the named method (ConfigureAccessPort counts successes so a
// partial configureLegacy can be simulated).
type flakyDriver struct {
	mgmt.Driver
	failMethod  string
	accessCalls int
	failAfter   int // ConfigureAccessPort: refuse the Nth call (transiently)
}

func (f *flakyDriver) ConfigureAccessPort(port int, vlan uint16) error {
	if f.failMethod == "ConfigureAccessPort" {
		n := f.accessCalls
		f.accessCalls++
		if n == f.failAfter {
			return fmt.Errorf("injected: access port %d refused", port)
		}
	}
	return f.Driver.ConfigureAccessPort(port, vlan)
}

func (f *flakyDriver) ConfigureTrunkPort(port int, native uint16, allowed []uint16) error {
	if f.failMethod == "ConfigureTrunkPort" {
		return fmt.Errorf("injected: trunk port %d refused", port)
	}
	return f.Driver.ConfigureTrunkPort(port, native, allowed)
}

func (f *flakyDriver) RemoveVLAN(id uint16) error {
	if f.failMethod == "RemoveVLAN" {
		return fmt.Errorf("injected: vlan %d sticky", id)
	}
	return f.Driver.RemoveVLAN(id)
}

func TestManagerRollbackRestoresRunningConfig(t *testing.T) {
	r := newManagerRig(t, 5, false)
	before, err := r.driver.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(r.driver, nil, ManagerConfig{})
	if _, err := m.Deploy(r.trunk.B(), nil); err != nil {
		t.Fatal(err)
	}
	mid, err := r.driver.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if mid == before {
		t.Fatal("deploy did not change the running config")
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	after, err := r.driver.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("rollback did not restore the running config:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
	if m.S4() != nil {
		t.Error("S4 survived rollback")
	}
	// Idempotent: a second rollback is a no-op.
	if err := m.Rollback(); err != nil {
		t.Errorf("second rollback: %v", err)
	}
}

func TestManagerDeployPartialFailureCleansUp(t *testing.T) {
	for _, tc := range []struct {
		name      string
		method    string
		failAfter int
	}{
		// Trunk config refused after every access port was retagged —
		// the worst partial state: fully tagged, no S4.
		{"trunk-refused", "ConfigureTrunkPort", 0},
		// Third access port refused midway through the tagging sweep.
		{"access-midway", "ConfigureAccessPort", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newManagerRig(t, 5, false)
			before, err := r.driver.RunningConfig()
			if err != nil {
				t.Fatal(err)
			}
			fd := &flakyDriver{Driver: r.driver, failMethod: tc.method, failAfter: tc.failAfter}
			m := NewManager(fd, nil, ManagerConfig{})
			_, err = m.Deploy(r.trunk.B(), nil)
			if err == nil {
				t.Fatal("deploy succeeded despite injected failure")
			}
			if !strings.Contains(err.Error(), "injected") {
				t.Errorf("error does not carry the device failure: %v", err)
			}
			// The partial tagging must have been undone: running config
			// identical to the pre-deploy snapshot, no plan, no S4.
			fd.failMethod = "" // rollback already ran; disarm for the probe
			after, err := r.driver.RunningConfig()
			if err != nil {
				t.Fatal(err)
			}
			if after != before {
				t.Errorf("partial deploy left residue:\n--- before ---\n%s\n--- after ---\n%s", before, after)
			}
			if m.Plan() != nil || m.S4() != nil {
				t.Error("failed deploy left plan/S4 state behind")
			}
		})
	}
}

func TestManagerRollbackReportsAndRetries(t *testing.T) {
	r := newManagerRig(t, 5, false)
	before, err := r.driver.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	fd := &flakyDriver{Driver: r.driver}
	m := NewManager(fd, nil, ManagerConfig{})
	if _, err := m.Deploy(r.trunk.B(), nil); err != nil {
		t.Fatal(err)
	}
	// First rollback: VLAN removal fails; the error must name every
	// VLAN it could not remove, and the rollback must not be marked
	// done.
	fd.failMethod = "RemoveVLAN"
	err = m.Rollback()
	if err == nil {
		t.Fatal("rollback swallowed device errors")
	}
	for _, vlan := range []string{"vlan 101", "vlan 104"} {
		if !strings.Contains(err.Error(), vlan) {
			t.Errorf("aggregated error missing %q: %v", vlan, err)
		}
	}
	// Retry with the device healthy again: finishes the job.
	fd.failMethod = ""
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	after, err := r.driver.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("retried rollback did not restore the config")
	}
	// The legacy switch is back to one declared VLAN (the default).
	if cfg := r.sw.Config(); len(cfg.VLANs) != 1 || cfg.VLANs[legacy.DefaultVLAN] == "" {
		t.Errorf("VLANs after rollback: %v", cfg.VLANs)
	}
}
