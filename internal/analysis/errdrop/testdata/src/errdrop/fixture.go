// Package errdrop is the errdrop fixture: errors discarded on paths
// reachable from Rollback/Stop/Close are diagnosed; handled errors,
// unreachable functions and exempt callees are not.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

type conn struct{}

func (c *conn) Close() error { return nil }
func (c *conn) Flush() error { return nil }

type mgr struct {
	a, b *conn
}

func (m *mgr) Close() error {
	fmt.Println("closing") // fmt is exempt
	m.a.Close()            // want "error from Close discarded on a teardown path .reachable from Close."
	defer m.b.Close()      // want "error from Close discarded"
	_ = m.a.Flush()        // want "error from Flush discarded"
	v, _ := m.pair()       // want "error from pair discarded"
	_ = v
	return nil
}

func (m *mgr) Stop() { m.teardown() }

// teardown is reachable from Stop only; the provenance names the root.
func (m *mgr) teardown() {
	m.a.Close() // want "error from Close discarded on a teardown path .reachable from Stop."
}

// Handled and aggregated errors are the fix, not findings.
func (m *mgr) Rollback() error {
	var errs []error
	if err := m.a.Close(); err != nil {
		errs = append(errs, err)
	}
	errs = append(errs, m.b.Close())
	return errors.Join(errs...)
}

func (m *mgr) pair() (int, error) { return 0, nil }

// Not reachable from any teardown root: dropping here is someone
// else's problem (and often fine).
func probe(c *conn) {
	c.Close()
}

// In-memory writers never fail; their dropped "errors" are noise.
func (m *mgr) stop() string {
	var b strings.Builder
	b.WriteString("done")
	return b.String()
}

func (m *mgr) closeHatched() error {
	//harmless:allow-droperr the transport is already torn down, Close can only re-report the original failure
	m.a.Close()
	m.b.Close() //harmless:allow-droperr // want "needs a reason"
	return nil
}

func (m *mgr) Shutdown() { m.closeHatched() } // want "error from closeHatched discarded"

func unusedHatch() {
	//harmless:allow-droperr nothing drops an error below // want "unused //harmless:allow-droperr directive"
	x := 1
	_ = x
}
