package migrate

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/cost"
	"github.com/harmless-sdn/harmless/internal/sim"
)

// FaultKind names a mid-wave fault the executor can inject.
type FaultKind string

// The supported fault kinds.
const (
	// FaultServerDown kills the wave's commodity server: the S4 stops
	// receiving on the trunk and the controller channels drop. The
	// wave's health check fails and the wave rolls back.
	FaultServerDown FaultKind = "serverDown"
	// FaultTrunkFlap administratively downs the trunk port for
	// Duration. The wave rolls back; the port re-enables later as a
	// plain access port.
	FaultTrunkFlap FaultKind = "trunkFlap"
	// FaultCtrlLoss kills the master controller channel; the slave
	// promotes with a bumped generation (the PR 5 failover path). The
	// wave survives and commits.
	FaultCtrlLoss FaultKind = "ctrlLoss"
)

// FaultSpec schedules one fault relative to the deploy instant of the
// wave migrating the targeted switch.
type FaultSpec struct {
	Kind   FaultKind `json:"kind"`
	Switch string    `json:"switch"`
	// AfterDeploy is the virtual-time offset into the wave's soak
	// window (0 = half the soak).
	AfterDeploy sim.Duration `json:"afterDeploy,omitempty"`
	// Duration applies to trunkFlap: how long the port stays down
	// (0 = 5ms).
	Duration sim.Duration `json:"duration,omitempty"`
}

// CatalogSpec overrides individual 2017 catalog prices.
type CatalogSpec struct {
	COTSPrice   float64 `json:"cotsPrice,omitempty"`
	ServerPrice float64 `json:"serverPrice,omitempty"`
	LegacyPrice float64 `json:"legacyPrice,omitempty"`
}

// Spec is a JSON campaign description (the cmd/migrate input format,
// following fleetsim's duration conventions).
type Spec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// WaveBudget is the per-wave capital budget (USD).
	WaveBudget float64 `json:"waveBudget"`
	// Switches is the fabric inventory.
	Switches []SwitchSpec `json:"switches"`
	// Catalog optionally overrides the 2017 street prices.
	Catalog *CatalogSpec `json:"catalog,omitempty"`
	// TrafficInterval is the virtual-time spacing of traffic ticks;
	// every tick, every paired host sends one UDP datagram each way.
	TrafficInterval sim.Duration `json:"trafficInterval,omitempty"`
	// WaveSoak is how long a deployed wave carries traffic before the
	// commit check; WaveGap separates a commit from the next deploy;
	// Tail keeps traffic flowing after the last commit.
	WaveSoak sim.Duration `json:"waveSoak,omitempty"`
	WaveGap  sim.Duration `json:"waveGap,omitempty"`
	Tail     sim.Duration `json:"tail,omitempty"`
	// Faults to inject mid-wave.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// withDefaults fills unset knobs.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TrafficInterval.Duration <= 0 {
		s.TrafficInterval.Duration = 2 * time.Millisecond
	}
	if s.WaveSoak.Duration <= 0 {
		s.WaveSoak.Duration = 30 * time.Millisecond
	}
	if s.WaveGap.Duration <= 0 {
		s.WaveGap.Duration = 10 * time.Millisecond
	}
	if s.Tail.Duration <= 0 {
		s.Tail.Duration = 20 * time.Millisecond
	}
	if s.WaveBudget == 0 {
		s.WaveBudget = s.ResolveCatalog().ServerPrice
	}
	for i := range s.Faults {
		if s.Faults[i].AfterDeploy.Duration <= 0 {
			s.Faults[i].AfterDeploy.Duration = s.WaveSoak.Duration / 2
		}
		if s.Faults[i].Kind == FaultTrunkFlap && s.Faults[i].Duration.Duration <= 0 {
			s.Faults[i].Duration.Duration = 5 * time.Millisecond
		}
	}
	return s
}

// ResolveCatalog returns the 2017 catalog with the spec's overrides.
func (s Spec) ResolveCatalog() cost.Catalog {
	c := cost.DefaultCatalog2017()
	if s.Catalog == nil {
		return c
	}
	if s.Catalog.COTSPrice > 0 {
		c.COTSSDNSwitchPrice = s.Catalog.COTSPrice
	}
	if s.Catalog.ServerPrice > 0 {
		c.ServerPrice = s.Catalog.ServerPrice
	}
	if s.Catalog.LegacyPrice > 0 {
		c.LegacySwitchPrice = s.Catalog.LegacyPrice
	}
	return c
}

// Validate checks the campaign for executability. Planner-level
// constraints (names, budget) are checked by PlanCampaign; this adds
// the executor's requirements.
func (s Spec) Validate() error {
	if len(s.Switches) == 0 {
		return fmt.Errorf("migrate: campaign has no switches")
	}
	if len(s.Switches) > 64 {
		return fmt.Errorf("migrate: campaign caps at 64 switches, got %d", len(s.Switches))
	}
	names := make(map[string]bool, len(s.Switches))
	for _, sw := range s.Switches {
		// The executor needs at least one traffic pair per switch and
		// addresses ports in one byte.
		if sw.Ports < 3 {
			return fmt.Errorf("migrate: switch %s has %d ports; the executor needs >= 3 (two hosts + trunk)", sw.Name, sw.Ports)
		}
		if sw.Ports > 250 {
			return fmt.Errorf("migrate: switch %s has %d ports; the executor caps at 250", sw.Name, sw.Ports)
		}
		names[sw.Name] = true
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultServerDown, FaultTrunkFlap, FaultCtrlLoss:
		default:
			return fmt.Errorf("migrate: fault %d has unknown kind %q", i, f.Kind)
		}
		if !names[f.Switch] {
			return fmt.Errorf("migrate: fault %d targets unknown switch %q", i, f.Switch)
		}
		if f.AfterDeploy.Duration >= s.WaveSoak.Duration {
			return fmt.Errorf("migrate: fault %d fires %v after deploy, outside the %v soak window",
				i, f.AfterDeploy.Duration, s.WaveSoak.Duration)
		}
	}
	return nil
}

// ParseSpec decodes, defaults and validates a campaign spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("migrate: spec parse: %w", err)
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return ParseSpec(data)
}
