// Command migrate runs a hybrid-SDN migration campaign: it plans the
// fabric's transition to HARMLESS-S4 under a per-wave budget, executes
// the waves against a live emulated mixed fabric (vendor CLIs, S4
// pairs, controller channels, continuous traffic — all on virtual
// time), injects the spec's mid-wave faults, rolls failed waves back to
// their pre-wave legacy configuration, and prints a digest-checked
// verdict as JSON. The same spec and seed always produce the same
// digest, on any machine.
//
// Usage:
//
//	migrate -spec examples/migrate/campaign.json
//	migrate -spec campaign.json -plan            (print the wave plan, run nothing)
//	migrate -spec campaign.json -seed 7 -out report.json
//
// Exit status: 0 on a passing campaign, 2 when the campaign fails its
// invariants (traffic loss, cost drift, botched rollback), 1 on
// operational errors (bad spec, wall budget exceeded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/migrate"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "campaign spec JSON file (required)")
		planOnly   = flag.Bool("plan", false, "print the planned waves and spend table, run nothing")
		seed       = flag.Int64("seed", -1, "override spec seed (-1 keeps the file's)")
		out        = flag.String("out", "", "also write the report JSON to this file")
		wallBudget = flag.Duration("wall-budget", 0, "abort if the run burns more real time than this (0 = unbounded)")
		verbose    = flag.Bool("v", false, "log campaign progress to stderr")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "migrate: -spec is required")
		flag.Usage()
		os.Exit(1)
	}

	spec, err := migrate.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	if *seed >= 0 {
		spec.Seed = *seed
	}

	x, err := migrate.NewExecutor(spec)
	if err != nil {
		fatal(err)
	}
	plan := x.Plan()
	if *planOnly {
		x.Close()
		fmt.Printf("campaign %q: %d switches in %d waves, budget $%.0f/wave\n\n",
			spec.Name, len(spec.Switches), len(plan.Waves), plan.WaveBudget)
		fmt.Print(migrate.FormatCampaignTable(plan))
		return
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "migrate: campaign %q seed %d: %d switches in %d waves\n",
			spec.Name, spec.Seed, len(spec.Switches), len(plan.Waves))
	}
	start := time.Now() //harmless:allow-wallclock progress-log wall duration, not simulation time
	rep, err := x.Run(*wallBudget)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "migrate: %d committed, %d rolled back, %d datagrams, %d events in %v wall\n",
			rep.CommittedWaves, rep.RolledBackWaves, rep.Sent, rep.Events, time.Since(start).Round(time.Millisecond)) //harmless:allow-wallclock progress-log wall duration
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if _, err := os.Stdout.Write(doc); err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fatal(err)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "migrate: CAMPAIGN FAILED: %v\n", rep.Failures)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "migrate: %v\n", err)
	os.Exit(1)
}
