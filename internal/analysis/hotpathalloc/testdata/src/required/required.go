// Package required exercises the Required table: this fixture package
// path is registered in hotpathalloc.Required, so mustBeHot must carry
// the annotation.
package required

func mustBeHot() int { return 1 } // want "declared zero-alloc hot path and must be annotated"

//harmless:hotpath
func alreadyHot() int { return 2 }
