// Package mgmt is the multi-vendor device-management layer of the
// HARMLESS manager — the role NAPALM plays in the paper. A Driver
// hides vendor CLI differences behind one configuration interface;
// two drivers are provided (ciscoish and aristaish, matching the CLI
// dialects emulated by internal/legacy), plus an autodetecting probe
// and an SNMP-based discovery helper.
package mgmt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"regexp"
	"strconv"
	"strings"
	"time"

	"github.com/harmless-sdn/harmless/internal/snmp"
)

// Facts summarizes a managed device, in the spirit of NAPALM get_facts.
type Facts struct {
	Hostname  string
	Vendor    string
	OSVersion string
	PortCount int
}

// InterfaceStatus is the administrative/operational state of one port.
type InterfaceStatus struct {
	Port   int
	Name   string
	Status string // "connected", "notconnect", "disabled"
	Mode   string // "access" or "trunk"
	VLAN   string // VLAN id or "trunk"
}

// Driver configures a legacy switch through its vendor CLI.
//
// All methods are safe to call repeatedly; Close must be called when
// done. Implementations are NOT safe for concurrent use — the manager
// serializes device operations, as NAPALM does.
type Driver interface {
	// Vendor returns the driver's vendor tag ("ciscoish"/"aristaish").
	Vendor() string
	// Facts queries device identity.
	Facts() (*Facts, error)
	// InterfaceName renders the vendor name of a port number.
	InterfaceName(port int) string
	// DeclareVLAN creates a VLAN with a name.
	DeclareVLAN(id uint16, name string) error
	// RemoveVLAN deletes a VLAN declaration (used when rolling a
	// migration back to the pre-wave configuration).
	RemoveVLAN(id uint16) error
	// ConfigureAccessPort makes port an access port in vlan.
	ConfigureAccessPort(port int, vlan uint16) error
	// ConfigureTrunkPort makes port a trunk with the given native
	// VLAN and allowed list.
	ConfigureTrunkPort(port int, native uint16, allowed []uint16) error
	// SetPortShutdown administratively disables/enables a port.
	SetPortShutdown(port int, down bool) error
	// RunningConfig fetches the device configuration text.
	RunningConfig() (string, error)
	// InterfaceStatuses lists per-port state.
	InterfaceStatuses() ([]InterfaceStatus, error)
	// Close terminates the management session.
	Close() error
}

// promptRE matches a CLI prompt at the end of the receive buffer:
// hostname plus optional (config...) suffix, ending in > or #.
var promptRE = regexp.MustCompile(`(?m)^[\w.-]+(\(config[\w-]*\))?[>#] ?$`)

// cliConn drives one CLI session: write a line, read until prompt.
type cliConn struct {
	rw      io.ReadWriteCloser
	timeout time.Duration
	buf     []byte
}

func newCLIConn(rw io.ReadWriteCloser) *cliConn {
	return &cliConn{rw: rw, timeout: 5 * time.Second}
}

// readUntilPrompt consumes input until a prompt line appears at the
// end of the buffer, returning everything before the prompt.
func (c *cliConn) readUntilPrompt() (string, error) {
	deadline := time.Now().Add(c.timeout)
	if conn, ok := c.rw.(net.Conn); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	tmp := make([]byte, 4096)
	for {
		// Check for a prompt terminating the buffer.
		s := string(c.buf)
		lastNL := strings.LastIndexByte(s, '\n')
		tail := s[lastNL+1:]
		if tail != "" && promptRE.MatchString(tail) {
			c.buf = nil
			return s[:lastNL+1], nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("mgmt: timeout waiting for prompt (buffer %q)", s)
		}
		n, err := c.rw.Read(tmp)
		if n > 0 {
			c.buf = append(c.buf, tmp[:n]...)
		}
		if err != nil {
			return "", fmt.Errorf("mgmt: read: %w", err)
		}
	}
}

// cmd sends one command line and returns its output.
func (c *cliConn) cmd(line string) (string, error) {
	if _, err := io.WriteString(c.rw, line+"\n"); err != nil {
		return "", fmt.Errorf("mgmt: write: %w", err)
	}
	out, err := c.readUntilPrompt()
	if err != nil {
		return "", err
	}
	if strings.Contains(out, "% ") {
		return out, &CommandError{Command: line, Output: strings.TrimSpace(out)}
	}
	return out, nil
}

// CommandError reports a CLI-level rejection ("% Invalid input ...").
type CommandError struct {
	Command string
	Output  string
}

// Error implements error.
func (e *CommandError) Error() string {
	return fmt.Sprintf("mgmt: command %q rejected: %s", e.Command, e.Output)
}

// cliDriver is the shared implementation; vendor differences are
// captured in small closures/fields.
type cliDriver struct {
	conn         *cliConn
	vendor       string
	ifName       func(int) string
	parseVersion func(string) (*Facts, error)
}

// Connect dials a device CLI over TCP and returns a driver for the
// given vendor ("ciscoish" or "aristaish").
func Connect(addr, vendor string) (Driver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %s: %w", addr, err)
	}
	return NewDriver(conn, vendor)
}

// NewDriver wraps an established management connection. It consumes
// the banner and enters privileged mode.
func NewDriver(rw io.ReadWriteCloser, vendor string) (Driver, error) {
	d := &cliDriver{conn: newCLIConn(rw), vendor: vendor}
	switch vendor {
	case "ciscoish":
		d.ifName = func(p int) string { return fmt.Sprintf("GigabitEthernet0/%d", p) }
		d.parseVersion = parseCiscoVersion
	case "aristaish":
		d.ifName = func(p int) string { return fmt.Sprintf("Ethernet%d", p) }
		d.parseVersion = parseAristaVersion
	default:
		rw.Close()
		return nil, fmt.Errorf("mgmt: unknown vendor %q", vendor)
	}
	// Swallow banner up to the first prompt, then elevate.
	if _, err := d.conn.readUntilPrompt(); err != nil {
		rw.Close()
		return nil, err
	}
	if _, err := d.conn.cmd("enable"); err != nil {
		rw.Close()
		return nil, err
	}
	return d, nil
}

// Probe connects, issues "show version", and returns a driver of the
// detected vendor — the NAPALM-style autodetection used when the
// operator does not know what the legacy switch is.
func Probe(rw io.ReadWriteCloser) (Driver, error) {
	c := newCLIConn(rw)
	if _, err := c.readUntilPrompt(); err != nil {
		rw.Close()
		return nil, err
	}
	out, err := c.cmd("show version")
	if err != nil {
		rw.Close()
		return nil, err
	}
	var vendor string
	switch {
	case strings.Contains(out, "Cisco IOS"):
		vendor = "ciscoish"
	case strings.Contains(out, "Arista"):
		vendor = "aristaish"
	default:
		rw.Close()
		return nil, fmt.Errorf("mgmt: cannot identify device from version output %q", out)
	}
	d := &cliDriver{conn: c, vendor: vendor}
	if vendor == "ciscoish" {
		d.ifName = func(p int) string { return fmt.Sprintf("GigabitEthernet0/%d", p) }
		d.parseVersion = parseCiscoVersion
	} else {
		d.ifName = func(p int) string { return fmt.Sprintf("Ethernet%d", p) }
		d.parseVersion = parseAristaVersion
	}
	if _, err := c.cmd("enable"); err != nil {
		rw.Close()
		return nil, err
	}
	return d, nil
}

func (d *cliDriver) Vendor() string                { return d.vendor }
func (d *cliDriver) InterfaceName(port int) string { return d.ifName(port) }
func (d *cliDriver) Close() error                  { return d.conn.rw.Close() }

func parseCiscoVersion(out string) (*Facts, error) {
	f := &Facts{Vendor: "ciscoish"}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Cisco IOS Software") {
			if i := strings.LastIndex(line, "Version "); i >= 0 {
				f.OSVersion = strings.TrimSpace(line[i+len("Version "):])
			}
		}
		if strings.Contains(line, " uptime is ") {
			f.Hostname = strings.SplitN(line, " ", 2)[0]
		}
		if strings.HasSuffix(line, "Gigabit Ethernet interfaces") {
			fmt.Sscanf(line, "%d", &f.PortCount)
		}
	}
	if f.OSVersion == "" {
		return nil, errors.New("mgmt: unparsable cisco version output")
	}
	return f, nil
}

func parseAristaVersion(out string) (*Facts, error) {
	f := &Facts{Vendor: "aristaish"}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Software image version: ") {
			f.OSVersion = strings.TrimPrefix(line, "Software image version: ")
		}
		if strings.HasSuffix(line, "Gigabit Ethernet interfaces") {
			fmt.Sscanf(line, "%d", &f.PortCount)
		}
	}
	if f.OSVersion == "" {
		return nil, errors.New("mgmt: unparsable arista version output")
	}
	return f, nil
}

func (d *cliDriver) Facts() (*Facts, error) {
	out, err := d.conn.cmd("show version")
	if err != nil {
		return nil, err
	}
	f, err := d.parseVersion(out)
	if err != nil {
		return nil, err
	}
	if f.Hostname == "" {
		// Fall back to the running config hostname line.
		if rc, err := d.RunningConfig(); err == nil {
			for _, line := range strings.Split(rc, "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "hostname ") {
					f.Hostname = strings.TrimPrefix(line, "hostname ")
					break
				}
			}
		}
	}
	return f, nil
}

// configSession runs a sequence of commands inside configure terminal,
// always leaving config mode afterwards.
func (d *cliDriver) configSession(cmds ...string) error {
	if _, err := d.conn.cmd("configure terminal"); err != nil {
		return err
	}
	var firstErr error
	for _, c := range cmds {
		if _, err := d.conn.cmd(c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if _, err := d.conn.cmd("end"); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (d *cliDriver) DeclareVLAN(id uint16, name string) error {
	return d.configSession(
		fmt.Sprintf("vlan %d", id),
		fmt.Sprintf("name %s", name),
		"exit",
	)
}

func (d *cliDriver) RemoveVLAN(id uint16) error {
	return d.configSession(fmt.Sprintf("no vlan %d", id))
}

func (d *cliDriver) ConfigureAccessPort(port int, vlan uint16) error {
	return d.configSession(
		fmt.Sprintf("interface %s", d.ifName(port)),
		"switchport mode access",
		fmt.Sprintf("switchport access vlan %d", vlan),
		"exit",
	)
}

func (d *cliDriver) ConfigureTrunkPort(port int, native uint16, allowed []uint16) error {
	list := make([]string, len(allowed))
	for i, v := range allowed {
		list[i] = strconv.Itoa(int(v))
	}
	cmds := []string{
		fmt.Sprintf("interface %s", d.ifName(port)),
		"switchport mode trunk",
	}
	if len(list) > 0 {
		cmds = append(cmds, fmt.Sprintf("switchport trunk allowed vlan %s", strings.Join(list, ",")))
	}
	cmds = append(cmds,
		fmt.Sprintf("switchport trunk native vlan %d", native),
		"exit",
	)
	return d.configSession(cmds...)
}

func (d *cliDriver) SetPortShutdown(port int, down bool) error {
	cmd := "no shutdown"
	if down {
		cmd = "shutdown"
	}
	return d.configSession(
		fmt.Sprintf("interface %s", d.ifName(port)),
		cmd,
		"exit",
	)
}

func (d *cliDriver) RunningConfig() (string, error) {
	return d.conn.cmd("show running-config")
}

func (d *cliDriver) InterfaceStatuses() ([]InterfaceStatus, error) {
	out, err := d.conn.cmd("show interfaces status")
	if err != nil {
		return nil, err
	}
	var statuses []InterfaceStatus
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) < 4 || fields[0] == "Port" {
			continue
		}
		port := portFromIfName(fields[0])
		if port == 0 {
			continue
		}
		statuses = append(statuses, InterfaceStatus{
			Port: port, Name: fields[0], Status: fields[1], VLAN: fields[2], Mode: fields[3],
		})
	}
	return statuses, nil
}

// portFromIfName extracts the trailing port number of any dialect's
// interface name.
func portFromIfName(name string) int {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) {
		return 0
	}
	n, err := strconv.Atoi(name[i:])
	if err != nil {
		return 0
	}
	return n
}

// DiscoverSNMP queries device identity over SNMP — the discovery path
// the paper's manager uses before committing to a CLI driver.
func DiscoverSNMP(client *snmp.Client) (*Facts, error) {
	descr, err := client.GetOne(snmp.MustOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		return nil, fmt.Errorf("mgmt: snmp sysDescr: %w", err)
	}
	name, err := client.GetOne(snmp.MustOID("1.3.6.1.2.1.1.5.0"))
	if err != nil {
		return nil, fmt.Errorf("mgmt: snmp sysName: %w", err)
	}
	ifNum, err := client.GetOne(snmp.MustOID("1.3.6.1.2.1.2.1.0"))
	if err != nil {
		return nil, fmt.Errorf("mgmt: snmp ifNumber: %w", err)
	}
	f := &Facts{
		Hostname:  string(name.(snmp.OctetString)),
		PortCount: int(ifNum.(snmp.Integer)),
	}
	ds := string(descr.(snmp.OctetString))
	switch {
	case strings.Contains(ds, "ciscoish"):
		f.Vendor = "ciscoish"
	case strings.Contains(ds, "aristaish"):
		f.Vendor = "aristaish"
	default:
		f.Vendor = "unknown"
	}
	return f, nil
}
