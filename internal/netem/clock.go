// Package netem emulates the physical substrate HARMLESS runs on:
// full-duplex point-to-point links between device ports, with optional
// latency, bandwidth and loss models. It replaces the wires, NICs and
// DPDK plumbing of the paper's testbed while preserving what the
// evaluation depends on: hop count, FIFO ordering per direction, and
// serialization/propagation delay.
//
// Links run in one of three modes:
//
//   - Synchronous (default): Send delivers the frame to the peer's
//     receiver in the calling goroutine. Deterministic and fast; used
//     by unit tests and the throughput benchmarks where queueing is
//     not under study. Devices must not hold locks while sending (a
//     hairpinned frame can re-enter the sending device on the same
//     stack).
//
//   - Asynchronous: each direction has a FIFO queue drained by its own
//     goroutine which applies the latency/bandwidth model in real
//     time. Used by the latency experiments (E3).
//
//   - Virtual (Async plus a Scheduler): the same latency/bandwidth
//     model, but deliveries are scheduled as virtual-time callbacks
//     instead of goroutine sleeps. A whole fabric driven from one
//     goroutine on one Scheduler is fully deterministic — the mode the
//     fleet-scale simulator (internal/sim, cmd/fleetsim) runs on.
//
// # The virtual-time contract
//
// Clock abstracts "what time is it"; Scheduler adds "run this at a
// future instant". ManualClock implements both and is the reference
// deterministic scheduler. Its ordering contract, which every
// Scheduler in this repo follows:
//
//   - Advance(d) (or AdvanceTo) fires every timer whose deadline is at
//     or before the post-advance instant — including timers that fall
//     EXACTLY on the advance boundary — in (deadline, registration
//     order) order. Two timers with the same deadline fire in the
//     order their AfterFunc calls were made.
//   - Callbacks run on the advancing goroutine, one at a time, with
//     Now() observed from inside a callback equal to that timer's own
//     deadline (time never appears to run backwards or skip ahead
//     mid-callback).
//   - A callback may call Now and AfterFunc. Timers it registers with
//     deadlines at or before the advance target fire later in the SAME
//     Advance, again in (deadline, registration) order. An AfterFunc(0)
//     registered outside any callback fires on the next Advance, even
//     Advance(0).
//   - Callbacks must not call Advance/AdvanceTo (re-entrant advancing
//     would deadlock); concurrent Advance calls from different
//     goroutines are serialized.
package netem

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time so that aging and timeout logic in the devices
// is testable without real sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// Scheduler extends Clock with the ability to schedule callbacks at
// future instants of its own timeline. RealClock schedules on the
// runtime timer wheel; ManualClock fires callbacks deterministically
// from Advance (see the package doc for the ordering contract).
type Scheduler interface {
	Clock
	// AfterFunc arranges for f to run once at Now()+d (d <= 0 means
	// the next advance for virtual clocks, immediately-ish for real
	// ones). The returned cancel function reports whether it stopped
	// the timer before the callback ran.
	AfterFunc(d time.Duration, f func()) (cancel func() bool)
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() } //harmless:allow-wallclock RealClock is the wall-clock adapter itself

// AfterFunc implements Scheduler on the runtime timer wheel.
func (RealClock) AfterFunc(d time.Duration, f func()) (cancel func() bool) {
	t := time.AfterFunc(d, f) //harmless:allow-wallclock RealClock schedules on the runtime timer wheel by definition
	return t.Stop
}

// manualTimer is one pending ManualClock callback.
type manualTimer struct {
	when    time.Time
	seq     uint64 // registration order; the deadline tie-break
	f       func()
	idx     int // heap index, -1 once popped
	stopped bool
}

// timerHeap orders pending timers by (deadline, registration).
type timerHeap []*manualTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*manualTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

// ManualClock is a deterministic virtual-time Scheduler: time only
// moves when Advance/AdvanceTo is called, and pending AfterFunc timers
// fire from inside the advance following the ordering contract in the
// package doc. The zero value starts at a fixed arbitrary epoch; safe
// for concurrent use.
type ManualClock struct {
	mu     sync.Mutex
	t      time.Time
	timers timerHeap
	seq    uint64
	fired  uint64

	advMu sync.Mutex // serializes Advance/AdvanceTo
}

// NewManualClock returns a manual clock starting at a fixed epoch.
func NewManualClock() *ManualClock {
	return &ManualClock{t: time.Date(2017, 8, 22, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (m *ManualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// AfterFunc implements Scheduler: f will run during the Advance that
// reaches Now()+d. Callbacks with equal deadlines fire in registration
// order; see the package doc for the full contract.
func (m *ManualClock) AfterFunc(d time.Duration, f func()) (cancel func() bool) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	tm := &manualTimer{when: m.t.Add(d), seq: m.seq, f: f}
	m.seq++
	heap.Push(&m.timers, tm)
	m.mu.Unlock()
	return func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		if tm.stopped || tm.idx < 0 {
			return false
		}
		tm.stopped = true
		heap.Remove(&m.timers, tm.idx)
		return true
	}
}

// Advance moves the clock forward by d, firing due timers.
func (m *ManualClock) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.t.Add(d)
	m.mu.Unlock()
	m.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to target (no-op if target is in
// the past), firing every timer with a deadline at or before target —
// boundary deadlines included — in (deadline, registration) order.
// Time steps to each timer's deadline before its callback runs.
func (m *ManualClock) AdvanceTo(target time.Time) {
	m.advMu.Lock()
	defer m.advMu.Unlock()
	m.mu.Lock()
	for len(m.timers) > 0 && !m.timers[0].when.After(target) {
		tm := heap.Pop(&m.timers).(*manualTimer)
		if tm.stopped {
			continue
		}
		if m.t.Before(tm.when) {
			m.t = tm.when
		}
		m.fired++
		m.mu.Unlock()
		tm.f() // without the lock: may call Now/AfterFunc
		m.mu.Lock()
	}
	if m.t.Before(target) {
		m.t = target
	}
	m.mu.Unlock()
}

// NextTimer returns the earliest pending timer deadline, if any — the
// event-loop primitive the sim engine steps on.
func (m *ManualClock) NextTimer() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.timers) > 0 {
		if m.timers[0].stopped { // defensively skip (Stop removes eagerly)
			heap.Pop(&m.timers)
			continue
		}
		return m.timers[0].when, true
	}
	return time.Time{}, false
}

// PendingTimers returns the number of registered, unfired timers.
func (m *ManualClock) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

// Fired returns how many timer callbacks have run so far.
func (m *ManualClock) Fired() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fired
}
