// Package netem is a clockinject fixture: its package path lands in
// the analyzer's scope, so direct time-package clock reads must be
// diagnosed unless escape-hatched.
package netem

import "time"

func violations() {
	_ = time.Now()                   // want "wall clock: time.Now"
	time.Sleep(time.Millisecond)     // want "wall clock: time.Sleep"
	<-time.After(time.Millisecond)   // want "wall clock: time.After"
	_ = time.Tick(time.Second)       // want "wall clock: time.Tick"
	_ = time.NewTimer(time.Second)   // want "wall clock: time.NewTimer"
	_ = time.NewTicker(time.Second)  // want "wall clock: time.NewTicker"
	_ = time.Since(time.Time{})      // want "wall clock: time.Since"
	_ = time.Until(time.Time{})      // want "wall clock: time.Until"
	_ = time.AfterFunc(0, func() {}) // want "wall clock: time.AfterFunc"
	f := time.Now                    // want "wall clock: time.Now"
	_ = f
}

func allowed() {
	_ = time.Now() //harmless:allow-wallclock this fixture line is the wall clock by design
	//harmless:allow-wallclock hatch on the line above also covers this one
	time.Sleep(time.Millisecond)
	_ = time.Now() //harmless:allow-wallclock // want "needs a reason"
}

//harmless:allow-wallclock nothing on the next line uses the clock // want "unused //harmless:allow-wallclock"
func clean() {
	_ = time.Duration(3) // time arithmetic without the clock is fine
	_ = time.Date(2017, 8, 22, 0, 0, 0, 0, time.UTC).Unix()
}
