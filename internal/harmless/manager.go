package harmless

import (
	"errors"
	"fmt"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/mgmt"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/snmp"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// Manager orchestrates a migration end to end, reproducing the
// workflow of the paper's HARMLESS Manager (§2): query the legacy
// switch (SNMP), configure its VLANs (vendor driver), instantiate
// HARMLESS-S4, install the translator flows, and connect SS_2 to the
// SDN controller.
type Manager struct {
	driver mgmt.Driver
	snmp   *snmp.Client // optional discovery path
	cfg    ManagerConfig

	plan       *Plan
	s4         *S4
	rolledBack bool
}

// ManagerConfig parameterizes a migration.
type ManagerConfig struct {
	// TrunkPort on the legacy switch (0 = highest port).
	TrunkPort int
	// AccessPorts to migrate (nil = all but the trunk).
	AccessPorts []int
	// BaseVLAN for the per-port VLANs (0 = 100).
	BaseVLAN uint16
	// DatapathID for SS_2 (0 = default).
	DatapathID uint64
	// Specialize enables the compiled fast path.
	Specialize bool
	// SweepInterval for flow expiry on SS_2 (0 = disabled).
	SweepInterval time.Duration
	// ControlPlane tunes SS_2's controller channels (keepalive,
	// backoff, logger for dial/liveness diagnostics). Zero = defaults.
	ControlPlane controlplane.Config
	// Clock injection for tests.
	Clock netem.Clock
}

// NewManager creates a manager driving the device behind driver.
// snmpClient may be nil; when present it is used for discovery just as
// the paper's manager queries the switch over SNMP.
func NewManager(driver mgmt.Driver, snmpClient *snmp.Client, cfg ManagerConfig) *Manager {
	return &Manager{driver: driver, snmp: snmpClient, cfg: cfg}
}

// Plan returns the computed migration plan (nil before Deploy).
func (m *Manager) Plan() *Plan { return m.plan }

// S4 returns the instantiated group node (nil before Deploy).
func (m *Manager) S4() *S4 { return m.s4 }

// Discover queries the device identity, preferring SNMP.
func (m *Manager) Discover() (*mgmt.Facts, error) {
	if m.snmp != nil {
		f, err := mgmt.DiscoverSNMP(m.snmp)
		if err == nil {
			return f, nil
		}
		// SNMP unreachable: fall through to the CLI.
	}
	return m.driver.Facts()
}

// Deploy executes the full migration:
//
//	discover -> plan -> configure legacy switch -> build S4 ->
//	attach trunk -> connect controller.
//
// trunkPort is the server-side end of the link cabled to the legacy
// switch's trunk; controllers names the SDN controller endpoints SS_2
// maintains channels to — addresses are dialed with backoff redial,
// established transports are served directly (nil/empty defers
// connection, e.g. for staged bring-up).
func (m *Manager) Deploy(trunkPort *netem.Port, controllers []controlplane.Endpoint) (*S4, error) {
	facts, err := m.Discover()
	if err != nil {
		return nil, fmt.Errorf("harmless: discovery failed: %w", err)
	}
	plan, err := PlanMigration(PlanConfig{
		Hostname:    facts.Hostname,
		NumPorts:    facts.PortCount,
		TrunkPort:   m.cfg.TrunkPort,
		AccessPorts: m.cfg.AccessPorts,
		BaseVLAN:    m.cfg.BaseVLAN,
	})
	if err != nil {
		return nil, err
	}
	m.plan = plan
	m.rolledBack = false

	if err := m.configureLegacy(plan); err != nil {
		// A partially applied tagging layout would leave the switch
		// tagged with no S4 attached; undo what was pushed before
		// reporting the failure.
		err = fmt.Errorf("harmless: configuring %s: %w", facts.Hostname, err)
		if rbErr := m.rollbackLegacy(plan); rbErr != nil {
			err = errors.Join(err, rbErr)
		}
		m.plan = nil
		return nil, err
	}

	s4, err := BuildS4(plan, S4Config{
		Name:       facts.Hostname,
		DatapathID: m.cfg.DatapathID,
		Specialize: m.cfg.Specialize,
		Clock:      m.cfg.Clock,
	})
	if err != nil {
		if rbErr := m.rollbackLegacy(plan); rbErr != nil {
			err = errors.Join(err, rbErr)
		}
		m.plan = nil
		return nil, err
	}
	s4.AttachTrunk(trunkPort)
	if len(controllers) > 0 {
		s4.ConnectControllers(controllers, m.cfg.ControlPlane, m.cfg.SweepInterval)
	}
	m.s4 = s4
	return s4, nil
}

// configureLegacy pushes the tagging layout through the vendor driver.
func (m *Manager) configureLegacy(plan *Plan) error {
	for _, port := range plan.MigratedPorts() {
		vlan := plan.VLANForPort[port]
		if err := m.driver.DeclareVLAN(vlan, fmt.Sprintf("harmless-p%d", port)); err != nil {
			return err
		}
		if err := m.driver.ConfigureAccessPort(port, vlan); err != nil {
			return err
		}
	}
	return m.driver.ConfigureTrunkPort(plan.TrunkPort, plan.NativeVLAN, plan.TrunkVLANs())
}

// Rollback restores the legacy switch to its pre-migration state —
// every migrated port (and the trunk) back to an access port in the
// native VLAN, the per-port HARMLESS VLANs removed — and stops the
// S4's control plane. configureLegacy departs from the all-access
// native-VLAN layout, so undoing it lands exactly there; callers that
// started from a different layout must restore it themselves.
//
// Rollback is idempotent: after a successful Deploy the first call
// does the work and further calls are no-ops, and it is a no-op when
// nothing was deployed (Deploy cleans up its own partial failures).
// Device errors do not stop the sweep; everything that could not be
// undone is reported in one aggregated error, and the rollback is NOT
// considered done so a later retry can finish the job.
func (m *Manager) Rollback() error {
	if m.plan == nil || m.rolledBack {
		return nil
	}
	if m.s4 != nil {
		m.s4.Stop()
		m.s4 = nil
	}
	if err := m.rollbackLegacy(m.plan); err != nil {
		return err
	}
	m.rolledBack = true
	return nil
}

// rollbackLegacy undoes the tagging layout of configureLegacy,
// best-effort: a failing port does not strand the rest, and every
// failure is reported.
func (m *Manager) rollbackLegacy(plan *Plan) error {
	var errs []error
	for _, port := range plan.MigratedPorts() {
		if err := m.driver.ConfigureAccessPort(port, plan.NativeVLAN); err != nil {
			errs = append(errs, fmt.Errorf("port %d: %w", port, err))
		}
	}
	if err := m.driver.ConfigureAccessPort(plan.TrunkPort, plan.NativeVLAN); err != nil {
		errs = append(errs, fmt.Errorf("trunk port %d: %w", plan.TrunkPort, err))
	}
	for _, port := range plan.MigratedPorts() {
		vlan := plan.VLANForPort[port]
		if err := m.driver.RemoveVLAN(vlan); err != nil {
			errs = append(errs, fmt.Errorf("vlan %d: %w", vlan, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("harmless: rollback of %s incomplete: %w", plan.Hostname, errors.Join(errs...))
	}
	return nil
}

// MigratePort extends a deployed migration by one more access port
// (the incremental strategy): the legacy switch is reconfigured, a
// patch pair is added, and the translator learns the new mapping.
// The controller observes a new port on SS_2 via PORT_STATUS.
func (m *Manager) MigratePort(port int) error {
	if m.s4 == nil {
		return fmt.Errorf("harmless: not deployed")
	}
	plan := m.plan
	if _, done := plan.VLANForPort[port]; done {
		return fmt.Errorf("harmless: port %d already migrated", port)
	}
	if port == plan.TrunkPort {
		return fmt.Errorf("harmless: port %d is the trunk", port)
	}
	base := m.cfg.BaseVLAN
	if base == 0 {
		base = 100
	}
	vlan := base + uint16(port)
	if err := m.driver.DeclareVLAN(vlan, fmt.Sprintf("harmless-p%d", port)); err != nil {
		return err
	}
	if err := m.driver.ConfigureAccessPort(port, vlan); err != nil {
		return err
	}
	plan.VLANForPort[port] = vlan
	if err := m.driver.ConfigureTrunkPort(plan.TrunkPort, plan.NativeVLAN, plan.TrunkVLANs()); err != nil {
		return err
	}
	// Wire the new logical port and extend the translator (the two
	// new rules are simple FLOW_MOD adds; existing rules are
	// untouched, so traffic on already-migrated ports is unaffected —
	// the "no flag day" property).
	softConnectPatch(m.s4, uint32(port))
	onePortPlan := &Plan{
		TrunkPort:   plan.TrunkPort,
		VLANForPort: map[int]uint16{port: vlan},
		NativeVLAN:  plan.NativeVLAN,
	}
	return InstallTranslator(m.s4.SS1, onePortPlan)
}

// softConnectPatch adds the patch pair for a logical port on a live
// S4, guarding against double wiring.
func softConnectPatch(s4 *S4, logical uint32) {
	for _, existing := range s4.SS2.PortNumbers() {
		if existing == logical {
			return
		}
	}
	softswitch.ConnectPatch(s4.SS1, SS1PatchBase+logical, s4.SS2, logical)
}
