// Package flowtable implements the OpenFlow 1.3 table semantics the
// software switch executes: priority-ordered flow tables with
// idle/hard timeouts and counters, a multi-table pipeline, group and
// meter tables, and an ESwitch-style dataplane specializer that
// compiles tables of exact-match templates into hash lookups
// (see specialize.go).
//
// Every Table (and the GroupTable) carries a revision counter, bumped
// on each flow-mod, group-mod, and expiry. Datapath caches — the
// specializer and the softswitch microflow cache — record the
// revisions their decisions were derived from and revalidate on every
// use, which is what keeps cached forwarding coherent with the rules
// (see DESIGN.md for the invalidation rules).
//
// The package separates protocol encoding (internal/openflow) from
// matching semantics: Match here is the evaluated form, convertible
// to/from the OXM TLV lists that travel on the wire.
package flowtable

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// FieldID enumerates matchable fields; values intentionally mirror the
// OXM field codes so conversion is trivial.
type FieldID = uint8

// VLANMode describes how a match constrains VLAN presence.
type VLANMode uint8

// VLAN match modes.
const (
	// VLANAnyMode: field not constrained.
	VLANAnyMode VLANMode = iota
	// VLANAbsent matches only untagged frames (OFPVID_NONE).
	VLANAbsent
	// VLANExact matches a present tag with the exact VID.
	VLANExact
)

// Match is the semantic form of an OpenFlow match, evaluated against a
// pkt.Key. The zero value matches every packet.
type Match struct {
	InPortSet bool
	InPort    uint32

	EthDstSet  bool
	EthDst     pkt.MAC
	EthDstMask pkt.MAC // all-ones when unmasked

	EthSrcSet  bool
	EthSrc     pkt.MAC
	EthSrcMask pkt.MAC

	EthTypeSet bool
	EthType    uint16

	VLAN    VLANMode
	VLANVID uint16

	VLANPCPSet bool
	VLANPCP    uint8

	IPProtoSet bool
	IPProto    uint8

	IPSrcSet  bool
	IPSrc     pkt.IPv4
	IPSrcMask pkt.IPv4

	IPDstSet  bool
	IPDst     pkt.IPv4
	IPDstMask pkt.IPv4

	L4SrcSet bool
	L4Src    uint16

	L4DstSet bool
	L4Dst    uint16

	ICMPTypeSet bool
	ICMPType    uint8
	ICMPCodeSet bool
	ICMPCode    uint8

	ARPOpSet   bool
	ARPOp      uint16
	ARPSPASet  bool
	ARPSPA     pkt.IPv4
	ARPSPAMask pkt.IPv4
	ARPTPASet  bool
	ARPTPA     pkt.IPv4
	ARPTPAMask pkt.IPv4
}

var onesMAC = pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
var onesIPv4 = pkt.IPv4{0xff, 0xff, 0xff, 0xff}

func macMasked(v, m, want, wantMask pkt.MAC) bool {
	for i := 0; i < 6; i++ {
		if v[i]&wantMask[i] != want[i]&wantMask[i] {
			return false
		}
	}
	_ = m
	return true
}

func ipMasked(v, want, wantMask pkt.IPv4) bool {
	for i := 0; i < 4; i++ {
		if v[i]&wantMask[i] != want[i]&wantMask[i] {
			return false
		}
	}
	return true
}

// Matches reports whether the key satisfies every constraint.
func (m *Match) Matches(k *pkt.Key) bool {
	if m.InPortSet && k.InPort != m.InPort {
		return false
	}
	if m.EthDstSet && !macMasked(k.EthDst, onesMAC, m.EthDst, m.EthDstMask) {
		return false
	}
	if m.EthSrcSet && !macMasked(k.EthSrc, onesMAC, m.EthSrc, m.EthSrcMask) {
		return false
	}
	if m.EthTypeSet && k.EthType != m.EthType {
		return false
	}
	switch m.VLAN {
	case VLANAbsent:
		if k.HasVLAN {
			return false
		}
	case VLANExact:
		if !k.HasVLAN || k.VLANID != m.VLANVID {
			return false
		}
	}
	if m.VLANPCPSet && (!k.HasVLAN || k.VLANPCP != m.VLANPCP) {
		return false
	}
	if m.IPProtoSet {
		if !k.HasIPv4 && !k.HasIPv6 {
			return false
		}
		if k.IPProto != m.IPProto {
			return false
		}
	}
	if m.IPSrcSet && (!k.HasIPv4 || !ipMasked(k.IPSrc, m.IPSrc, m.IPSrcMask)) {
		return false
	}
	if m.IPDstSet && (!k.HasIPv4 || !ipMasked(k.IPDst, m.IPDst, m.IPDstMask)) {
		return false
	}
	if m.L4SrcSet && (!k.HasL4 || k.L4Src != m.L4Src) {
		return false
	}
	if m.L4DstSet && (!k.HasL4 || k.L4Dst != m.L4Dst) {
		return false
	}
	if m.ICMPTypeSet && (!k.HasICMP || k.ICMPType != m.ICMPType) {
		return false
	}
	if m.ICMPCodeSet && (!k.HasICMP || k.ICMPCode != m.ICMPCode) {
		return false
	}
	if m.ARPOpSet && (!k.HasARP || k.ARPOp != m.ARPOp) {
		return false
	}
	if m.ARPSPASet && (!k.HasARP || !ipMasked(k.ARPSPA, m.ARPSPA, m.ARPSPAMask)) {
		return false
	}
	if m.ARPTPASet && (!k.HasARP || !ipMasked(k.ARPTPA, m.ARPTPA, m.ARPTPAMask)) {
		return false
	}
	return true
}

// FromOXM populates the match from wire TLVs.
func FromOXM(wire *openflow.Match) (*Match, error) {
	m := &Match{}
	for _, o := range wire.OXMs {
		switch o.Field {
		case openflow.OXMInPort:
			m.InPortSet = true
			m.InPort = binary.BigEndian.Uint32(o.Value)
		case openflow.OXMEthDst:
			m.EthDstSet = true
			copy(m.EthDst[:], o.Value)
			m.EthDstMask = onesMAC
			if o.HasMask {
				copy(m.EthDstMask[:], o.Mask)
			}
		case openflow.OXMEthSrc:
			m.EthSrcSet = true
			copy(m.EthSrc[:], o.Value)
			m.EthSrcMask = onesMAC
			if o.HasMask {
				copy(m.EthSrcMask[:], o.Mask)
			}
		case openflow.OXMEthType:
			m.EthTypeSet = true
			m.EthType = binary.BigEndian.Uint16(o.Value)
		case openflow.OXMVLANVID:
			v := binary.BigEndian.Uint16(o.Value)
			if v == openflow.OXMVIDNone {
				m.VLAN = VLANAbsent
			} else {
				m.VLAN = VLANExact
				m.VLANVID = v &^ openflow.OXMVIDPresent
			}
		case openflow.OXMVLANPCP:
			m.VLANPCPSet = true
			m.VLANPCP = o.Value[0]
		case openflow.OXMIPProto:
			m.IPProtoSet = true
			m.IPProto = o.Value[0]
		case openflow.OXMIPv4Src:
			m.IPSrcSet = true
			copy(m.IPSrc[:], o.Value)
			m.IPSrcMask = onesIPv4
			if o.HasMask {
				copy(m.IPSrcMask[:], o.Mask)
			}
		case openflow.OXMIPv4Dst:
			m.IPDstSet = true
			copy(m.IPDst[:], o.Value)
			m.IPDstMask = onesIPv4
			if o.HasMask {
				copy(m.IPDstMask[:], o.Mask)
			}
		case openflow.OXMTCPSrc, openflow.OXMUDPSrc:
			m.L4SrcSet = true
			m.L4Src = binary.BigEndian.Uint16(o.Value)
		case openflow.OXMTCPDst, openflow.OXMUDPDst:
			m.L4DstSet = true
			m.L4Dst = binary.BigEndian.Uint16(o.Value)
		case openflow.OXMICMPType:
			m.ICMPTypeSet = true
			m.ICMPType = o.Value[0]
		case openflow.OXMICMPCode:
			m.ICMPCodeSet = true
			m.ICMPCode = o.Value[0]
		case openflow.OXMARPOp:
			m.ARPOpSet = true
			m.ARPOp = binary.BigEndian.Uint16(o.Value)
		case openflow.OXMARPSPA:
			m.ARPSPASet = true
			copy(m.ARPSPA[:], o.Value)
			m.ARPSPAMask = onesIPv4
			if o.HasMask {
				copy(m.ARPSPAMask[:], o.Mask)
			}
		case openflow.OXMARPTPA:
			m.ARPTPASet = true
			copy(m.ARPTPA[:], o.Value)
			m.ARPTPAMask = onesIPv4
			if o.HasMask {
				copy(m.ARPTPAMask[:], o.Mask)
			}
		default:
			return nil, fmt.Errorf("flowtable: unsupported OXM field %d", o.Field)
		}
	}
	return m, nil
}

// ToOXM converts the match back to wire TLVs.
func (m *Match) ToOXM() openflow.Match {
	w := openflow.Match{}
	if m.InPortSet {
		w.WithInPort(m.InPort)
	}
	if m.EthDstSet {
		if m.EthDstMask == onesMAC {
			w.WithEthDst(m.EthDst)
		} else {
			w.WithEthDstMasked(m.EthDst, m.EthDstMask)
		}
	}
	if m.EthSrcSet {
		w.WithEthSrc(m.EthSrc)
	}
	if m.EthTypeSet {
		w.WithEthType(m.EthType)
	}
	switch m.VLAN {
	case VLANAbsent:
		w.WithNoVLAN()
	case VLANExact:
		w.WithVLAN(m.VLANVID)
	}
	if m.VLANPCPSet {
		w.WithVLANPCP(m.VLANPCP)
	}
	if m.IPProtoSet {
		w.WithIPProto(m.IPProto)
	}
	if m.IPSrcSet {
		if m.IPSrcMask == onesIPv4 {
			w.WithIPv4Src(m.IPSrc)
		} else {
			w.WithIPv4SrcMasked(m.IPSrc, m.IPSrcMask)
		}
	}
	if m.IPDstSet {
		if m.IPDstMask == onesIPv4 {
			w.WithIPv4Dst(m.IPDst)
		} else {
			w.WithIPv4DstMasked(m.IPDst, m.IPDstMask)
		}
	}
	if m.L4SrcSet {
		if m.IPProto == pkt.IPProtoUDP {
			w.WithUDPSrc(m.L4Src)
		} else {
			w.WithTCPSrc(m.L4Src)
		}
	}
	if m.L4DstSet {
		if m.IPProto == pkt.IPProtoUDP {
			w.WithUDPDst(m.L4Dst)
		} else {
			w.WithTCPDst(m.L4Dst)
		}
	}
	if m.ICMPTypeSet {
		w.WithICMPType(m.ICMPType)
	}
	if m.ARPOpSet {
		w.WithARPOp(m.ARPOp)
	}
	if m.ARPSPASet {
		w.WithARPSPA(m.ARPSPA)
	}
	if m.ARPTPASet {
		w.WithARPTPA(m.ARPTPA)
	}
	return w
}

// Equal reports exact match equality (used by strict flow-mod ops).
func (m *Match) Equal(o *Match) bool { return *m == *o }

// CoveredBy reports whether every packet matching m also matches the
// (typically wider) request r — the selection rule for non-strict
// delete/modify. Only same-field refinement is considered, which
// covers the practical cases (exact vs wildcard, narrower IP prefix).
func (m *Match) CoveredBy(r *Match) bool {
	if r.InPortSet && (!m.InPortSet || m.InPort != r.InPort) {
		return false
	}
	if r.EthDstSet {
		if !m.EthDstSet {
			return false
		}
		for i := 0; i < 6; i++ {
			// r's constrained bits must be constrained identically in m.
			if m.EthDstMask[i]&r.EthDstMask[i] != r.EthDstMask[i] {
				return false
			}
			if m.EthDst[i]&r.EthDstMask[i] != r.EthDst[i]&r.EthDstMask[i] {
				return false
			}
		}
	}
	if r.EthSrcSet && (!m.EthSrcSet || m.EthSrc != r.EthSrc) {
		return false
	}
	if r.EthTypeSet && (!m.EthTypeSet || m.EthType != r.EthType) {
		return false
	}
	if r.VLAN != VLANAnyMode {
		if m.VLAN != r.VLAN {
			return false
		}
		if r.VLAN == VLANExact && m.VLANVID != r.VLANVID {
			return false
		}
	}
	if r.IPProtoSet && (!m.IPProtoSet || m.IPProto != r.IPProto) {
		return false
	}
	if r.IPSrcSet {
		if !m.IPSrcSet {
			return false
		}
		for i := 0; i < 4; i++ {
			if m.IPSrcMask[i]&r.IPSrcMask[i] != r.IPSrcMask[i] {
				return false
			}
			if m.IPSrc[i]&r.IPSrcMask[i] != r.IPSrc[i]&r.IPSrcMask[i] {
				return false
			}
		}
	}
	if r.IPDstSet {
		if !m.IPDstSet {
			return false
		}
		for i := 0; i < 4; i++ {
			if m.IPDstMask[i]&r.IPDstMask[i] != r.IPDstMask[i] {
				return false
			}
			if m.IPDst[i]&r.IPDstMask[i] != r.IPDst[i]&r.IPDstMask[i] {
				return false
			}
		}
	}
	if r.L4SrcSet && (!m.L4SrcSet || m.L4Src != r.L4Src) {
		return false
	}
	if r.L4DstSet && (!m.L4DstSet || m.L4Dst != r.L4Dst) {
		return false
	}
	if r.ICMPTypeSet && (!m.ICMPTypeSet || m.ICMPType != r.ICMPType) {
		return false
	}
	if r.ARPOpSet && (!m.ARPOpSet || m.ARPOp != r.ARPOp) {
		return false
	}
	return true
}

// String renders the match for diagnostics.
func (m *Match) String() string {
	var parts []string
	if m.InPortSet {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.EthDstSet {
		parts = append(parts, "eth_dst="+m.EthDst.String())
	}
	if m.EthSrcSet {
		parts = append(parts, "eth_src="+m.EthSrc.String())
	}
	if m.EthTypeSet {
		parts = append(parts, fmt.Sprintf("eth_type=%#x", m.EthType))
	}
	switch m.VLAN {
	case VLANAbsent:
		parts = append(parts, "vlan=none")
	case VLANExact:
		parts = append(parts, fmt.Sprintf("vlan=%d", m.VLANVID))
	}
	if m.IPProtoSet {
		parts = append(parts, fmt.Sprintf("ip_proto=%d", m.IPProto))
	}
	if m.IPSrcSet {
		parts = append(parts, "nw_src="+m.IPSrc.String())
	}
	if m.IPDstSet {
		parts = append(parts, "nw_dst="+m.IPDst.String())
	}
	if m.L4SrcSet {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.L4Src))
	}
	if m.L4DstSet {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.L4Dst))
	}
	if m.ARPOpSet {
		parts = append(parts, fmt.Sprintf("arp_op=%d", m.ARPOp))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// ValidatePrerequisites enforces the OXM prerequisite rules of the
// OpenFlow 1.3 spec (§7.2.3.8): L3 fields require the matching
// eth_type, L4 fields require the matching ip_proto, VLAN PCP requires
// a present tag, and ARP fields require eth_type=0x0806. Real switches
// reject flow-mods violating these with OFPET_BAD_MATCH; so does the
// softswitch.
func (m *Match) ValidatePrerequisites() error {
	if m.IPSrcSet || m.IPDstSet {
		if !m.EthTypeSet || m.EthType != pkt.EtherTypeIPv4 {
			return fmt.Errorf("flowtable: ipv4 match requires eth_type=0x0800")
		}
	}
	if m.IPProtoSet {
		if !m.EthTypeSet || (m.EthType != pkt.EtherTypeIPv4 && m.EthType != pkt.EtherTypeIPv6) {
			return fmt.Errorf("flowtable: ip_proto match requires eth_type=0x0800 or 0x86dd")
		}
	}
	if m.L4SrcSet || m.L4DstSet {
		if !m.IPProtoSet || (m.IPProto != pkt.IPProtoTCP && m.IPProto != pkt.IPProtoUDP) {
			return fmt.Errorf("flowtable: tcp/udp port match requires ip_proto=6 or 17")
		}
	}
	if m.ICMPTypeSet || m.ICMPCodeSet {
		if !m.IPProtoSet || m.IPProto != pkt.IPProtoICMP {
			return fmt.Errorf("flowtable: icmp match requires ip_proto=1")
		}
	}
	if m.ARPOpSet || m.ARPSPASet || m.ARPTPASet {
		if !m.EthTypeSet || m.EthType != pkt.EtherTypeARP {
			return fmt.Errorf("flowtable: arp match requires eth_type=0x0806")
		}
	}
	if m.VLANPCPSet && m.VLAN != VLANExact {
		return fmt.Errorf("flowtable: vlan_pcp match requires a vlan_vid match")
	}
	return nil
}
