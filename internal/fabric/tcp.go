package fabric

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// tcpLite is a minimal TCP implementation sufficient for the demo's
// web traffic: three-way handshake, one request segment, one response
// segment, FIN teardown. It is NOT a general transport (no
// retransmission, no windows, single-segment payloads) — the emulated
// fabric is lossless unless an experiment injects loss, in which case
// the experiment measures exactly that loss.
type tcpLite struct {
	host *Host

	mu        sync.Mutex
	listeners map[uint16]func(req []byte) []byte
	conns     map[tcpKey]*tcpConn
}

type tcpKey struct {
	peer      pkt.IPv4
	peerPort  uint16
	localPort uint16
}

type tcpState int

const (
	tcpSynSent tcpState = iota
	tcpSynReceived
	tcpEstablished
	tcpClosed
)

type tcpConn struct {
	state    tcpState
	sndNxt   uint32 // next sequence we will send
	rcvNxt   uint32 // next sequence we expect
	peerMAC  pkt.MAC
	synAckCh chan struct{} // client: handshake complete
	dataCh   chan []byte   // client: response payload
}

func newTCPLite(h *Host) *tcpLite {
	return &tcpLite{
		host:      h,
		listeners: make(map[uint16]func([]byte) []byte),
		conns:     make(map[tcpKey]*tcpConn),
	}
}

// ServeTCP registers a request handler for a local port. The handler
// receives the request payload and returns the response payload.
func (h *Host) ServeTCP(port uint16, handler func(req []byte) []byte) {
	h.tcp.mu.Lock()
	h.tcp.listeners[port] = handler
	h.tcp.mu.Unlock()
}

// GetTCP opens a connection to dst:port, sends request, and returns
// the single-segment response (the demo's HTTP-lite GET).
func (h *Host) GetTCP(dst pkt.IPv4, port uint16, request []byte, timeout time.Duration) ([]byte, error) {
	mac, err := h.Resolve(dst, timeout)
	if err != nil {
		return nil, err
	}
	sport := uint16(30000 + rand.Intn(30000))
	key := tcpKey{peer: dst, peerPort: port, localPort: sport}
	conn := &tcpConn{
		state:    tcpSynSent,
		sndNxt:   uint32(rand.Intn(1 << 30)),
		peerMAC:  mac,
		synAckCh: make(chan struct{}, 1),
		dataCh:   make(chan []byte, 1),
	}
	h.tcp.mu.Lock()
	h.tcp.conns[key] = conn
	h.tcp.mu.Unlock()
	defer func() {
		h.tcp.mu.Lock()
		delete(h.tcp.conns, key)
		h.tcp.mu.Unlock()
	}()

	// SYN.
	iss := conn.sndNxt
	h.tcp.sendSegment(mac, dst, sport, port, iss, 0, pkt.TCPSyn, nil)
	conn.sndNxt = iss + 1
	synTimer := h.after(timeout)
	select {
	case <-conn.synAckCh:
		synTimer.Stop()
	case <-synTimer.C:
		return nil, fmt.Errorf("fabric: TCP connect %s:%d: %w", dst, port, ErrTimeout)
	}
	// ACK + request (piggybacked).
	h.tcp.mu.Lock()
	seq, ack := conn.sndNxt, conn.rcvNxt
	h.tcp.mu.Unlock()
	h.tcp.sendSegment(mac, dst, sport, port, seq, ack, pkt.TCPAck|pkt.TCPPsh, request)
	h.tcp.mu.Lock()
	conn.sndNxt += uint32(len(request))
	h.tcp.mu.Unlock()

	respTimer := h.after(timeout)
	defer respTimer.Stop()
	select {
	case resp := <-conn.dataCh:
		return resp, nil
	case <-respTimer.C:
		return nil, fmt.Errorf("fabric: TCP response %s:%d: %w", dst, port, ErrTimeout)
	}
}

// handle processes an inbound TCP segment.
func (t *tcpLite) handle(p *pkt.Packet, ip *pkt.IPv4Header, eth *pkt.Ethernet) {
	tcp := p.TCP()
	key := tcpKey{peer: ip.Src, peerPort: tcp.SrcPort, localPort: tcp.DstPort}

	t.mu.Lock()
	conn := t.conns[key]
	listener := t.listeners[tcp.DstPort]
	t.mu.Unlock()

	payload := tcp.LayerPayload()
	switch {
	case conn == nil && listener != nil && tcp.Flags&pkt.TCPSyn != 0 && tcp.Flags&pkt.TCPAck == 0:
		// Passive open: answer SYN/ACK.
		c := &tcpConn{
			state:   tcpSynReceived,
			sndNxt:  uint32(rand.Intn(1 << 30)),
			rcvNxt:  tcp.Seq + 1,
			peerMAC: eth.Src,
		}
		t.mu.Lock()
		t.conns[key] = c
		t.mu.Unlock()
		iss := c.sndNxt
		t.sendSegment(eth.Src, ip.Src, tcp.DstPort, tcp.SrcPort, iss, c.rcvNxt, pkt.TCPSyn|pkt.TCPAck, nil)
		t.mu.Lock()
		c.sndNxt = iss + 1
		t.mu.Unlock()

	case conn != nil && conn.state == tcpSynSent && tcp.Flags&(pkt.TCPSyn|pkt.TCPAck) == pkt.TCPSyn|pkt.TCPAck:
		// Active open completing.
		t.mu.Lock()
		conn.rcvNxt = tcp.Seq + 1
		conn.state = tcpEstablished
		t.mu.Unlock()
		conn.synAckCh <- struct{}{}

	case conn != nil && conn.state == tcpSynReceived && len(payload) > 0:
		// Server receives the request; respond and close.
		t.mu.Lock()
		conn.state = tcpEstablished
		conn.rcvNxt = tcp.Seq + uint32(len(payload))
		seq, ack := conn.sndNxt, conn.rcvNxt
		t.mu.Unlock()
		var resp []byte
		if listener != nil {
			resp = listener(append([]byte{}, payload...))
		}
		t.sendSegment(eth.Src, ip.Src, tcp.DstPort, tcp.SrcPort, seq, ack, pkt.TCPAck|pkt.TCPPsh|pkt.TCPFin, resp)
		t.mu.Lock()
		conn.sndNxt += uint32(len(resp)) + 1 // +1 for FIN
		conn.state = tcpClosed
		t.mu.Unlock()

	case conn != nil && len(payload) > 0 && conn.dataCh != nil:
		// Client receives the response.
		t.mu.Lock()
		conn.rcvNxt = tcp.Seq + uint32(len(payload))
		if tcp.Flags&pkt.TCPFin != 0 {
			conn.rcvNxt++
		}
		seq, ack := conn.sndNxt, conn.rcvNxt
		t.mu.Unlock()
		// ACK everything (incl. FIN).
		t.sendSegment(eth.Src, ip.Src, tcp.DstPort, tcp.SrcPort, seq, ack, pkt.TCPAck, nil)
		select {
		case conn.dataCh <- append([]byte{}, payload...):
		default:
		}

	case conn != nil && tcp.Flags&pkt.TCPFin != 0:
		// Bare FIN: ACK it.
		t.mu.Lock()
		conn.rcvNxt = tcp.Seq + 1
		seq, ack := conn.sndNxt, conn.rcvNxt
		t.mu.Unlock()
		t.sendSegment(eth.Src, ip.Src, tcp.DstPort, tcp.SrcPort, seq, ack, pkt.TCPAck, nil)
	}
}

// sendSegment emits one TCP segment.
func (t *tcpLite) sendSegment(dstMAC pkt.MAC, dst pkt.IPv4, sport, dport uint16, seq, ack uint32, flags uint8, payload []byte) {
	pl := pkt.Payload(payload)
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: t.host.MAC, Dst: dstMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoTCP, Src: t.host.IP, Dst: dst},
		&pkt.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: 65535},
		&pl,
	)
	if err != nil {
		return
	}
	t.host.send(frame)
}
