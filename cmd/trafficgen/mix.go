package main

// The telemetry exercise mode: a heavy-hitter + mouse-churn traffic
// mix through a bare switch with the flow-telemetry plane attached —
// the workload that makes the aggregation window, the active/idle
// export timers and the sampler actually work for their living.

import (
	"fmt"
	"time"

	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

type mixConfig struct {
	flows      int
	elephants  int
	mouseLife  int
	duration   time.Duration
	workers    int
	batch      int
	sampleRate int
	specialize bool
	export     string
}

// mixSwitch builds the bare forwarding switch (port 1 -> port 2
// discard) used by the mix run.
func mixSwitch(cfg mixConfig, tab *telemetry.Table) *softswitch.Switch {
	sw := softswitch.New("mix", 1,
		softswitch.WithSpecialization(cfg.specialize),
		softswitch.WithTelemetry(tab))
	sw.AttachPort(2, "out", &discardBackend{})
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		fatal("flow: %v", err)
	}
	return sw
}

func runMix(cfg mixConfig) {
	shards := 1
	if cfg.workers > 0 {
		shards = cfg.workers
	}
	tab := telemetry.NewTable(telemetry.Config{
		Shards:        shards,
		ActiveTimeout: 5 * time.Second,
		IdleTimeout:   2 * time.Second,
		SweepInterval: 250 * time.Millisecond,
		SampleRate:    cfg.sampleRate,
		RingSize:      1 << 16,
	})
	col := telemetry.NewCollector()
	var exp telemetry.Exporter = col
	if cfg.export != "" {
		udp, err := telemetry.NewUDPExporter(cfg.export)
		if err != nil {
			fatal("telemetry-export: %v", err)
		}
		defer udp.Close()
		exp = telemetry.TeeExporter{col, udp}
		fmt.Printf("exporting IPFIX records to udp://%s\n", cfg.export)
	}
	agg := telemetry.NewAggregator(tab, exp, 500*time.Millisecond)
	agg.Start()
	defer agg.Stop()

	sw := mixSwitch(cfg, tab)
	gen := fabric.NewMixGenerator(64, cfg.elephants, cfg.flows, cfg.mouseLife, 0.8, 42)
	fmt.Printf("mix: %d elephants (80%% of packets) + %d active mice over a pool of %d flows, %s\n",
		cfg.elephants, cfg.flows, gen.DistinctFlows(), cfg.duration)

	status := time.NewTicker(time.Second)
	defer status.Stop()
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var sent uint64

	printStatus := func() {
		elapsed := time.Since(start).Seconds()
		c := tab.Counters()
		as := agg.Stats()
		fmt.Printf("t=%4.1fs %9.0f pps | live=%d churned=%d | %s | exported=%d biflows=%d samples=%d msgs=%d\n",
			elapsed, float64(sent)/elapsed, tab.Len(), gen.Churned(), c,
			as.FlowRecords, as.Biflows, as.Samples, as.Messages)
	}

	if cfg.workers > 0 {
		pool := ssruntime.New(sw, ssruntime.Config{Workers: cfg.workers, Telemetry: tab})
		pool.Start()
		for time.Now().Before(deadline) {
			for i := 0; i < 256; i++ {
				if pool.Dispatch(1, gen.Next()) {
					sent++
				}
			}
			select {
			case <-status.C:
				printStatus()
			default:
			}
		}
		pool.Stop() // drains and flushes telemetry
	} else {
		batchN := cfg.batch
		if batchN < 1 {
			batchN = 1
		}
		var vec [][]byte
		for time.Now().Before(deadline) {
			vec = gen.NextBatch(vec, batchN)
			sw.ReceiveBatch(1, vec)
			sent += uint64(len(vec))
			select {
			case <-status.C:
				printStatus()
			default:
			}
		}
		tab.FlushAll(time.Now().UnixNano())
	}
	agg.Stop()
	agg.Flush()
	printStatus()

	fmt.Println("\ntop talkers (collector view):")
	fmt.Printf("%-4s %-48s %12s %12s %8s\n", "#", "flow", "packets", "bytes", "rev-pkts")
	for i, f := range col.Top(10) {
		fmt.Printf("%-4d %-48s %12d %12d %8d\n", i+1, f.Key, f.Packets+f.RevPackets, f.Bytes+f.RevBytes, f.RevPackets)
	}

	gotPkts, gotBytes := col.Totals()
	cs := sw.CacheStats()
	classified := cs.Hits.Load() + cs.Misses.Load()
	verdict := "EXACT"
	if gotPkts != classified {
		verdict = fmt.Sprintf("MISMATCH (lost %d on the drain ring?)", tab.Counters().RecordsLost.Load())
	}
	fmt.Printf("\nexported totals: %d pkts / %d bytes; datapath classified %d — %s\n",
		gotPkts, gotBytes, classified, verdict)
}
