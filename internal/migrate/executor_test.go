package migrate

import (
	"testing"
	"time"
)

const testWallBudget = 60 * time.Second

// threeWaveSpec is the canonical e2e campaign: three switches, budget
// for one server per wave -> three waves, demand ordering alpha, bravo,
// charlie.
func threeWaveSpec() Spec {
	return Spec{
		Name: "e2e",
		Seed: 7,
		Switches: []SwitchSpec{
			{Name: "alpha", Ports: 5, Demand: 3},
			{Name: "bravo", Ports: 5, Demand: 2},
			{Name: "charlie", Ports: 5, Demand: 1},
		},
	}
}

func waveByIndex(t *testing.T, rep *Report, idx int) WaveReport {
	t.Helper()
	for _, w := range rep.Waves {
		if w.Index == idx {
			return w
		}
	}
	t.Fatalf("report has no wave %d", idx)
	return WaveReport{}
}

// TestCampaignEndToEnd is the headline scenario: a three-wave campaign
// under continuous traffic where the middle wave's commodity server
// dies mid-soak. The wave must roll back to its exact pre-wave legacy
// config, the other two must commit, not one datagram may be lost, and
// the books must match internal/cost bitwise.
func TestCampaignEndToEnd(t *testing.T) {
	spec := threeWaveSpec()
	spec.Faults = []FaultSpec{{Kind: FaultServerDown, Switch: "bravo"}}

	x, err := NewExecutor(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan := x.Plan()
	if len(plan.Waves) != 3 {
		t.Fatalf("planned %d waves, want 3", len(plan.Waves))
	}
	rep, err := x.Run(testWallBudget)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Failures) != 0 {
		t.Fatalf("campaign recorded failures: %v", rep.Failures)
	}
	if !rep.Pass {
		t.Fatal("campaign did not pass")
	}

	// Wave verdicts: bravo (wave 2, demand order) rolled back on the
	// server death; alpha and charlie committed.
	for idx, want := range map[int]string{1: OutcomeCommitted, 2: OutcomeRolledBack, 3: OutcomeCommitted} {
		if w := waveByIndex(t, rep, idx); w.Outcome != want {
			t.Errorf("wave %d: outcome %q, want %q (reason %q)", idx, w.Outcome, want, w.Reason)
		}
	}
	failed := waveByIndex(t, rep, 2)
	if failed.Switches[0] != "bravo" || failed.Fault != string(FaultServerDown) {
		t.Errorf("failed wave: switches %v fault %q", failed.Switches, failed.Fault)
	}
	if !failed.ConfigConform {
		t.Error("rolled-back wave did not restore its pre-wave running config")
	}
	if failed.ActualCost != 0 {
		t.Errorf("rolled-back wave booked $%v", failed.ActualCost)
	}
	if rep.CommittedWaves != 2 || rep.RolledBackWaves != 1 {
		t.Errorf("committed/rolledBack = %d/%d, want 2/1", rep.CommittedWaves, rep.RolledBackWaves)
	}

	// Zero loss across the whole campaign, fault included.
	if !rep.CounterExact || rep.Lost != 0 || rep.SendErrs != 0 {
		t.Errorf("traffic books: sent=%d received=%d lost=%d errs=%d",
			rep.Sent, rep.Received, rep.Lost, rep.SendErrs)
	}
	if rep.Sent == 0 {
		t.Error("campaign carried no traffic")
	}
	// The dead server must have absorbed some flood copies — proof the
	// fault actually bit.
	if rep.DeadTrunkFrames == 0 {
		t.Error("serverDown fault left no trace on the dead trunk")
	}

	// Cost books: committed waves only, each bitwise from internal/cost.
	if !rep.CostConform {
		t.Error("cost conformance failed")
	}
	wantSpend := waveByIndex(t, rep, 1).PlannedCost + waveByIndex(t, rep, 3).PlannedCost
	if rep.ActualSpend != wantSpend {
		t.Errorf("actual spend $%v, want $%v", rep.ActualSpend, wantSpend)
	}
	if rep.PlannedSpend != plan.TotalSpend {
		t.Errorf("planned spend $%v, plan says $%v", rep.PlannedSpend, plan.TotalSpend)
	}
}

// TestCampaignDeterministicDigest runs the identical faulted campaign
// twice; the reports must agree byte for byte modulo wall time.
func TestCampaignDeterministicDigest(t *testing.T) {
	spec := threeWaveSpec()
	spec.Faults = []FaultSpec{{Kind: FaultServerDown, Switch: "bravo"}}
	a, err := Run(spec, testWallBudget)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, testWallBudget)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests diverge:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	if a.Digest != a.ComputeDigest() {
		t.Error("stored digest does not re-derive from the report")
	}
	if a.Events != b.Events || a.VirtualEnd != b.VirtualEnd {
		t.Errorf("event books diverge: %d/%v vs %d/%v", a.Events, a.VirtualEnd, b.Events, b.VirtualEnd)
	}
}

// TestCampaignControllerLossSurvives: losing the master controller
// mid-wave is NOT a wave failure — the slave promotes (the PR 5
// failover path) and the wave commits.
func TestCampaignControllerLossSurvives(t *testing.T) {
	spec := threeWaveSpec()
	spec.Faults = []FaultSpec{{Kind: FaultCtrlLoss, Switch: "alpha"}}
	rep, err := Run(spec, testWallBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("campaign failed: %v", rep.Failures)
	}
	if rep.CommittedWaves != 3 || rep.RolledBackWaves != 0 {
		t.Fatalf("committed/rolledBack = %d/%d, want 3/0", rep.CommittedWaves, rep.RolledBackWaves)
	}
	w := waveByIndex(t, rep, 1)
	if w.Fault != string(FaultCtrlLoss) || !w.Failover {
		t.Errorf("wave 1: fault %q failover=%v, want ctrlLoss with failover", w.Fault, w.Failover)
	}
	if !rep.CounterExact {
		t.Errorf("failover lost traffic: sent=%d received=%d", rep.Sent, rep.Received)
	}
}

// TestCampaignTrunkFlapRollsBack: an administratively flapped trunk
// fails its wave; the rollback verification is deferred past the flap
// and still proves exact restoration.
func TestCampaignTrunkFlapRollsBack(t *testing.T) {
	spec := threeWaveSpec()
	spec.Faults = []FaultSpec{{Kind: FaultTrunkFlap, Switch: "charlie"}}
	rep, err := Run(spec, testWallBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("campaign failed: %v", rep.Failures)
	}
	w := waveByIndex(t, rep, 3)
	if w.Outcome != OutcomeRolledBack || w.Fault != string(FaultTrunkFlap) {
		t.Fatalf("wave 3: outcome %q fault %q", w.Outcome, w.Fault)
	}
	if !w.ConfigConform {
		t.Error("flapped wave did not restore its pre-wave running config")
	}
	if !rep.CounterExact {
		t.Errorf("flap lost traffic: sent=%d received=%d", rep.Sent, rep.Received)
	}
}

// TestCampaignCleanRun: no faults, every wave commits, spend equals the
// full plan.
func TestCampaignCleanRun(t *testing.T) {
	rep, err := Run(threeWaveSpec(), testWallBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.CommittedWaves != 3 {
		t.Fatalf("clean campaign: pass=%v committed=%d failures=%v", rep.Pass, rep.CommittedWaves, rep.Failures)
	}
	if rep.ActualSpend != rep.PlannedSpend {
		t.Errorf("clean campaign spend $%v != plan $%v", rep.ActualSpend, rep.PlannedSpend)
	}
	if rep.MigratedPorts != rep.AccessPorts {
		t.Errorf("migrated %d of %d access ports", rep.MigratedPorts, rep.AccessPorts)
	}
}
