package softswitch_test

// Microflow-cache benchmarks: cached vs uncached datapath on a
// realistic two-table ruleset (64 entries per table), under
// single-flow, uniform many-flow, Zipf many-flow, and adversarial
// cache-thrash traffic. Run with
//
//	go test -bench=. -benchmem ./internal/softswitch
//
// The pps metric makes the acceptance comparison direct: the cached
// single-flow path must beat the uncached pipeline walk by >= 2x.

import (
	"fmt"
	"testing"

	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// benchSwitch builds a switch with a realistic ruleset: table 0 holds
// 63 L3 distractor entries above a port-match entry that sends
// everything to table 1; table 1 holds 63 L4 distractor entries above
// a catch-all that outputs on port 2. The uncached walk therefore
// scans ~128 entries per packet, which is what a migrated access
// switch's tables look like; generated benchmark traffic (10.1/16 ->
// 10.2/16 UDP) never matches a distractor.
func benchSwitch(b *testing.B, opts ...softswitch.Option) *softswitch.Switch {
	b.Helper()
	sw := softswitch.New("bench", 0xbe, opts...)
	for _, port := range []uint32{1, 2} {
		l := netem.NewLink(netem.LinkConfig{})
		b.Cleanup(l.Close)
		sw.AttachNetPort(port, "p", l.A())
		l.B().SetReceiver(func([]byte) {})
	}
	add := func(table uint8, priority uint16, m openflow.Match, instrs ...openflow.Instruction) {
		_, err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: table, Command: openflow.FlowAdd, Priority: priority,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: m, Instructions: instrs,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	output2 := &openflow.InstrApplyActions{Actions: []openflow.Action{
		&openflow.ActionOutput{Port: 2, MaxLen: 0xffff},
	}}
	for i := 0; i < 63; i++ {
		m := openflow.Match{}
		m.WithInPort(1).WithEthType(pkt.EtherTypeIPv4).
			WithIPv4Dst(pkt.IPv4{10, 9, byte(i >> 8), byte(i)})
		add(0, uint16(1000-i), m, output2)
	}
	mIn := openflow.Match{}
	mIn.WithInPort(1)
	add(0, 10, mIn, &openflow.InstrGotoTable{TableID: 1})
	for i := 0; i < 63; i++ {
		m := openflow.Match{}
		m.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).
			WithUDPDst(uint16(50000 + i))
		add(1, uint16(1000-i), m, output2)
	}
	add(1, 1, openflow.Match{}, output2)
	return sw
}

// frameSource is any generator of benchmark frames (fabric.Generator,
// fabric.MixGenerator, ...).
type frameSource interface{ Next() []byte }

// drive pushes warm packets of src through the switch untimed (cache
// fill, pool growth, adaptive-bypass convergence — thrash workloads
// need >= 2 windows per shard to settle), then reports packets per
// second over the timed run.
func drive(b *testing.B, sw *softswitch.Switch, src frameSource, warm int) {
	b.Helper()
	for i := 0; i < warm; i++ {
		sw.Receive(1, src.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(1, src.Next())
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

func BenchmarkSingleFlow(b *testing.B) {
	for _, v := range []struct {
		name string
		opts []softswitch.Option
	}{
		{"uncached", []softswitch.Option{softswitch.WithMicroflowCache(false)}},
		{"specialized", []softswitch.Option{softswitch.WithMicroflowCache(false), softswitch.WithSpecialization(true)}},
		{"cached", nil},
	} {
		b.Run(v.name, func(b *testing.B) {
			drive(b, benchSwitch(b, v.opts...), fabric.NewUDPGenerator(64, 1, 7), 256)
		})
	}
}

// driveBatch pushes generator traffic through the switch in vectors of
// the given size via ReceiveBatch and reports packets per second —
// directly comparable to drive's per-frame pps.
func driveBatch(b *testing.B, sw *softswitch.Switch, gen *fabric.Generator, batch int) {
	b.Helper()
	for i := 0; i < gen.Len(); i++ {
		sw.Receive(1, gen.Next())
	}
	var vec [][]byte
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		vec = gen.NextBatch(vec, batch)
		sw.ReceiveBatch(1, vec)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkReceiveBatch sweeps the batch size on the cached many-flow
// workload: batch=1 is the per-frame wrapper baseline, larger vectors
// amortize key extraction, shard locks and egress flushes.
func BenchmarkReceiveBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			driveBatch(b, benchSwitch(b), fabric.NewUDPGenerator(64, 1024, 7), batch)
		})
	}
}

// wildcardFlows builds flows that differ only in fields the bench
// ruleset never consults (MACs, source IP, source port): the exact
// tier sees 4096 distinct keys, but every packet projects onto ONE
// megaflow mask-class entry.
func wildcardFlows(n int) []fabric.FlowSpec {
	flows := make([]fabric.FlowSpec, n)
	for i := range flows {
		flows[i] = fabric.FlowSpec{
			SrcMAC: pkt.MAC{0x02, 0x30, 0, 0, byte(i >> 8), byte(i)},
			DstMAC: pkt.MAC{0x02, 0x40, 0, 0, byte(i >> 8), byte(i)},
			SrcIP:  pkt.IPv4{10, 1, byte(i >> 8), byte(i)},
			DstIP:  pkt.IPv4{10, 2, 0, 1},
			Sport:  uint16(1024 + i),
			Dport:  9999,
		}
	}
	return flows
}

func BenchmarkManyFlows(b *testing.B) {
	workloads := []struct {
		name string
		gen  func() frameSource
		opts []softswitch.Option
		warm int
	}{
		// 1024 flows, round-robin: every flow stays cached.
		{"uniform", func() frameSource { return fabric.NewUDPGenerator(64, 1024, 7) }, nil, 2048},
		// 1024 flows, Zipf popularity: the hot head dominates.
		{"zipf", func() frameSource { return fabric.NewZipfGenerator(64, 1024, 1.2, 7) }, nil, 8192},
		// 4096 flows round-robin against a 256-entry cache: every
		// packet misses and evicts (the adversarial worst case; the
		// warm count lets adaptive bypass converge on every shard).
		{"thrash", func() frameSource { return fabric.NewThrashGenerator(64, 4096, 7) },
			[]softswitch.Option{softswitch.WithMicroflowCacheSize(256)}, 24576},
		// Elephant/mouse mix: 32 long-lived flows carry 80% of the
		// packets over a churning population of short-lived mice —
		// the production profile a pure exact-match cache thrashes on.
		{"churn", func() frameSource { return fabric.NewMixGenerator(64, 32, 256, 16, 0.8, 7) },
			[]softswitch.Option{softswitch.WithMicroflowCacheSize(512)}, 16384},
		// 4096 flows varying only unconsulted header fields: the
		// megaflow tier folds them into one wildcard entry.
		{"wildcard", func() frameSource { return fabric.NewFlowGenerator(64, wildcardFlows(4096)) },
			[]softswitch.Option{softswitch.WithMicroflowCacheSize(256)}, 8192},
	}
	for _, w := range workloads {
		for _, cached := range []bool{true, false} {
			name := w.name + "/uncached"
			opts := []softswitch.Option{softswitch.WithMicroflowCache(false)}
			if cached {
				name = w.name + "/cached"
				opts = w.opts
			}
			b.Run(name, func(b *testing.B) {
				drive(b, benchSwitch(b, opts...), w.gen(), w.warm)
			})
		}
	}
}

// benchDiscard swallows egress so the telemetry-overhead comparison
// measures nothing but the datapath (and keeps the cache-hit batch
// path at 0 allocs/op, which the baseline asserts).
type benchDiscard struct{ n int }

func (d *benchDiscard) Transmit([]byte)          { d.n++ }
func (d *benchDiscard) TransmitBatch(f [][]byte) { d.n += len(f) }

// BenchmarkTelemetryOverhead measures the flow-telemetry tax on the
// cache-hit batch path: telemetry off, accounting on, and accounting
// plus the 1-in-64 packet sampler (the acceptance configuration —
// expected within a few percent of off, 0 allocs/op).
func BenchmarkTelemetryOverhead(b *testing.B) {
	modes := []struct {
		name string
		cfg  *telemetry.Config
	}{
		{"off", nil},
		{"on", &telemetry.Config{}},
		{"sample64", &telemetry.Config{SampleRate: 64}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			sw := benchSwitch(b)
			sw.AttachPort(2, "out", &benchDiscard{})
			if mode.cfg != nil {
				sw.SetTelemetry(telemetry.NewTable(*mode.cfg))
			}
			driveBatch(b, sw, fabric.NewUDPGenerator(64, 1024, 7), 256)
		})
	}
}
