package pkt

import (
	"encoding/binary"
	"fmt"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPHeaderLen is the length of an Ethernet/IPv4 ARP packet.
const ARPHeaderLen = 28

// ARP is an Ethernet/IPv4 ARP packet (HTYPE=1, PTYPE=0x0800).
type ARP struct {
	Op        uint16
	SenderHW  MAC
	SenderIP  IPv4
	TargetHW  MAC
	TargetIP  IPv4
	payload   []byte
	HWType    uint16 // decoded as-is; 1 on serialize
	ProtoType uint16 // decoded as-is; 0x0800 on serialize
}

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// LayerPayload implements Layer.
func (a *ARP) LayerPayload() []byte { return a.payload }

// NextLayerType implements Layer.
func (a *ARP) NextLayerType() LayerType { return LayerTypeNone }

// DecodeFromBytes implements Layer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPHeaderLen {
		return errTruncated(LayerTypeARP)
	}
	a.HWType = binary.BigEndian.Uint16(data[0:2])
	a.ProtoType = binary.BigEndian.Uint16(data[2:4])
	if hlen, plen := data[4], data[5]; hlen != 6 || plen != 4 {
		return &decodeError{layer: LayerTypeARP, msg: fmt.Sprintf("unsupported hlen/plen %d/%d", hlen, plen)}
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	a.payload = data[ARPHeaderLen:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	hdr := b.PrependBytes(ARPHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], 1)      // Ethernet
	binary.BigEndian.PutUint16(hdr[2:4], 0x0800) // IPv4
	hdr[4], hdr[5] = 6, 4
	binary.BigEndian.PutUint16(hdr[6:8], a.Op)
	copy(hdr[8:14], a.SenderHW[:])
	copy(hdr[14:18], a.SenderIP[:])
	copy(hdr[18:24], a.TargetHW[:])
	copy(hdr[24:28], a.TargetIP[:])
	return nil
}

// String summarizes the packet for diagnostics.
func (a *ARP) String() string {
	if a.Op == ARPRequest {
		return fmt.Sprintf("ARP who-has %s tell %s (%s)", a.TargetIP, a.SenderIP, a.SenderHW)
	}
	return fmt.Sprintf("ARP %s is-at %s", a.SenderIP, a.SenderHW)
}
