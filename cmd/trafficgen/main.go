// Command trafficgen runs the E2 throughput sweep without the Go
// bench harness: it pushes frames of each RFC 2544 size through (a)
// a bare software switch and (b) the full HARMLESS chain, and prints
// packets/s, Gbit/s and the relative penalty — the table behind the
// paper's "no major performance penalty" claim.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

func main() {
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per cell")
	specialize := flag.Bool("specialize", true, "enable the ESwitch-style fast path")
	flag.Parse()

	fmt.Printf("%-8s %-22s %-22s %-10s\n", "frame", "bare softswitch", "HARMLESS chain", "penalty")
	for _, size := range fabric.FrameSizes {
		barePPS := measureBare(size, *duration, *specialize)
		harmPPS := measureHARMLESS(size, *duration, *specialize)
		penalty := 1 - harmPPS/barePPS
		fmt.Printf("%-8d %10.0f pps %5.2f Gb/s %10.0f pps %5.2f Gb/s %8.1f%%\n",
			size,
			barePPS, gbps(barePPS, size),
			harmPPS, gbps(harmPPS, size),
			penalty*100)
	}
}

func gbps(pps float64, size int) float64 { return pps * float64(size) * 8 / 1e9 }

func measureBare(size int, d time.Duration, specialize bool) float64 {
	sw := softswitch.New("bare", 1, softswitch.WithSpecialization(specialize))
	in := netem.NewLink(netem.LinkConfig{})
	out := netem.NewLink(netem.LinkConfig{})
	defer in.Close()
	defer out.Close()
	sw.AttachNetPort(1, "in", in.A())
	sw.AttachNetPort(2, "out", out.A())
	out.B().SetReceiver(func([]byte) {})
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		fatal("flow: %v", err)
	}
	frame := fabric.NewUDPGenerator(size, 64, 42)
	return measure(d, func() { _ = in.B().Send(frame.Next()) })
}

func measureHARMLESS(size int, d time.Duration, specialize bool) float64 {
	dep, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:   4,
		Apps:       []controller.App{&apps.Learning{Table: 0}},
		Specialize: specialize,
	})
	if err != nil {
		fatal("deploy: %v", err)
	}
	defer dep.Close()
	if err := dep.WaitConnected(5 * time.Second); err != nil {
		fatal("controller: %v", err)
	}
	// Warm flows in both directions.
	for i := 0; i < 2; i++ {
		if err := dep.Hosts[1].Ping(dep.Hosts[2].IP, 2*time.Second); err != nil {
			fatal("warmup: %v", err)
		}
	}
	payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
	if payloadLen < 0 {
		payloadLen = 0
	}
	payload := make(pkt.Payload, payloadLen)
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
		&pkt.UDP{SrcPort: 7, DstPort: 8},
		&payload,
	)
	if err != nil {
		fatal("frame: %v", err)
	}
	h1 := dep.Hosts[1]
	return measure(d, func() { h1.SendRaw(frame) })
}

// measure runs fn in a tight loop for duration d and returns ops/s.
func measure(d time.Duration, fn func()) float64 {
	// Warm up.
	for i := 0; i < 1000; i++ {
		fn()
	}
	start := time.Now()
	n := 0
	for time.Since(start) < d {
		for i := 0; i < 256; i++ {
			fn()
		}
		n += 256
	}
	return float64(n) / time.Since(start).Seconds()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trafficgen: "+format+"\n", args...)
	os.Exit(1)
}
