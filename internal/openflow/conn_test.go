package openflow

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestConnCloseDeliversQueuedFrames: frames accepted by Send before
// Close must reach the peer — Close flushes the outbound queue instead
// of discarding it.
func TestConnCloseDeliversQueuedFrames(t *testing.T) {
	c1, c2 := net.Pipe()
	conn := NewConn(c1)

	got := make(chan Message, 4)
	go func() {
		for {
			m, err := ReadMessage(c2)
			if err != nil {
				close(got)
				return
			}
			got <- m
		}
	}()

	// net.Pipe is unbuffered: the writer blocks on the first frame
	// until the reader picks it up, so with several sends in flight at
	// Close time some are still queued.
	for i := 0; i < 3; i++ {
		if err := conn.Send(&EchoRequest{Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for i := 0; i < 3; i++ {
		select {
		case m, ok := <-got:
			if !ok {
				t.Fatalf("peer saw only %d of 3 queued frames", i)
			}
			er, isEcho := m.(*EchoRequest)
			if !isEcho || len(er.Data) != 1 || er.Data[0] != byte(i) {
				t.Fatalf("frame %d: got %#v", i, m)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for queued frame %d", i)
		}
	}
}

// TestConnSendBackpressure: a full outbound queue makes Send block
// (flow control towards a slow peer), and Close releases the blocked
// sender with an error instead of leaking it.
func TestConnSendBackpressure(t *testing.T) {
	c1, c2 := net.Pipe() // nothing ever reads c2
	defer c2.Close()
	conn := NewConn(c1)

	// First frame: wait until the writer dequeued it and is stuck in
	// the pipe Write, so the queue capacity below is exact.
	if err := conn.Send(&Hello{}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(conn.out) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first frame")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue; everything beyond it must block.
	for i := 0; i < outboundQueueLen; i++ {
		if err := conn.Send(&Hello{}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	blocked := make(chan error, 1)
	go func() { blocked <- conn.Send(&Hello{}) }()
	select {
	case err := <-blocked:
		t.Fatalf("send past a full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked: backpressure is on.
	}

	go conn.Close() // Close flushes towards the dead peer, then force-closes
	select {
	case err := <-blocked:
		if err == nil {
			t.Fatal("blocked Send returned nil after Close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("blocked Send never released by Close")
	}
}

// failingRW errors every write after the first n.
type failingRW struct {
	writes atomic.Int32
	okay   int32
}

func (f *failingRW) Write(p []byte) (int, error) {
	if f.writes.Add(1) > f.okay {
		return 0, errors.New("transport broke")
	}
	return len(p), nil
}
func (f *failingRW) Read(p []byte) (int, error) { return 0, io.EOF }
func (f *failingRW) Close() error               { return nil }

// TestConnStickyWriteError: after a transport write fails, every later
// Send reports the original write error rather than silently queueing
// into a dead connection.
func TestConnStickyWriteError(t *testing.T) {
	rw := &failingRW{okay: 1}
	conn := NewConn(rw)
	if err := conn.Send(&Hello{}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	// Second frame hits the failing write; wait for the writer to
	// observe it and latch the error.
	_ = conn.Send(&Hello{})
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := conn.Send(&Hello{})
		if err != nil {
			if want := "transport broke"; !strings.Contains(err.Error(), want) {
				t.Fatalf("sticky error %q does not mention %q", err, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write error never became sticky")
		}
		time.Sleep(time.Millisecond)
	}
	// And it stays sticky.
	if err := conn.Send(&Hello{}); err == nil {
		t.Fatal("send after sticky error succeeded")
	}
}
