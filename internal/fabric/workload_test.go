package fabric

import (
	"sort"
	"testing"
	"time"
)

// drain pulls the whole stream, checking the non-decreasing At
// contract as it goes.
func drain(t *testing.T, w Workload) []FlowArrival {
	t.Helper()
	var out []FlowArrival
	var last time.Duration
	for {
		a, ok := w.Next()
		if !ok {
			return out
		}
		if a.At < last {
			t.Fatalf("arrival %d at %v after one at %v: At order violated", len(out), a.At, last)
		}
		last = a.At
		out = append(out, a)
	}
}

// Seeded MixGenerator statistics: elephants carry ~elephantShare of
// the emitted frames, identified as the frames whose emission
// frequency towers over the mouse pool's (elephant and mouse tuples
// come from different seeds, so frame content is distinct).
func TestMixGeneratorElephantShare(t *testing.T) {
	const n = 200000
	const share = 0.8
	const nElephants = 4
	g := NewMixGenerator(64, nElephants, 64, 16, share, 42)
	freq := make(map[string]int)
	for i := 0; i < n; i++ {
		freq[string(g.Next())]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) < nElephants {
		t.Fatalf("only %d distinct frames emitted", len(counts))
	}
	top := 0
	for _, c := range counts[:nElephants] {
		top += c
	}
	got := float64(top) / n
	if got < share-0.02 || got > share+0.02 {
		t.Errorf("top-%d frame share = %.3f, want %.2f ± 0.02", nElephants, got, share)
	}
	// Mouse churn: with n emissions, ~n*(1-share) mouse frames over a
	// 64-mouse window living 16 packets each -> about n*0.2/16 churned.
	wantChurn := float64(n) * (1 - share) / 16
	if c := float64(g.Churned()); c < 0.8*wantChurn || c > 1.2*wantChurn {
		t.Errorf("Churned() = %.0f, want ~%.0f ± 20%%", c, wantChurn)
	}
}

// Same seed, same MixGenerator stream; different seed diverges.
func TestMixGeneratorDeterminism(t *testing.T) {
	emit := func(seed int64) []string {
		g := NewMixGenerator(64, 2, 16, 8, 0.8, seed)
		out := make([]string, 2000)
		for i := range out {
			out[i] = string(g.Next())
		}
		return out
	}
	a, b := emit(7), emit(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed streams diverge at frame %d", i)
		}
	}
	c := emit(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

// Poisson arrivals: the empirical rate matches the configured rate and
// the inter-arrival CV is ~1 (exponential), under a fixed seed.
func TestPoissonWorkloadStatistics(t *testing.T) {
	const flows = 50000
	const rate = 1000.0
	w, err := NewPoissonWorkload(100, flows, rate, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, w)
	if len(arr) != flows {
		t.Fatalf("stream yielded %d arrivals, want %d", len(arr), flows)
	}
	span := arr[len(arr)-1].At.Seconds()
	gotRate := float64(len(arr)) / span
	if gotRate < 0.95*rate || gotRate > 1.05*rate {
		t.Errorf("empirical rate %.1f/s, want %.0f ± 5%%", gotRate, rate)
	}
	// CV of inter-arrivals ~ 1 for a Poisson process.
	mean := span / float64(len(arr)-1)
	var varsum float64
	for i := 1; i < len(arr); i++ {
		d := (arr[i].At - arr[i-1].At).Seconds() - mean
		varsum += d * d
	}
	cv := sqrt(varsum/float64(len(arr)-2)) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("inter-arrival CV = %.3f, want ~1 (exponential)", cv)
	}
	for i, a := range arr {
		if a.Src == a.Dst {
			t.Fatalf("arrival %d has src == dst == %d", i, a.Src)
		}
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Diurnal modulation: the busiest period-quarter carries measurably
// more arrivals than the quietest, close to the analytic
// (1+amp)/(1-amp) peak-to-trough ratio integrated over quarters.
func TestDiurnalWorkloadModulation(t *testing.T) {
	const flows = 80000
	const amp = 0.6
	period := 10 * time.Second
	w, err := NewDiurnalWorkload(50, flows, 1000, amp, period, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, w)
	// Bucket arrivals by phase quarter across all cycles.
	var quarters [4]int
	for _, a := range arr {
		phase := a.At % period
		quarters[int(4*phase/period)]++
	}
	// sin over [0,period): quarter 0 rising (above base), quarter 2-3
	// below. Peak quarter is 0 or 1; trough 2 or 3.
	peak := max(quarters[0], quarters[1])
	trough := min(quarters[2], quarters[3])
	if trough == 0 {
		t.Fatal("empty trough quarter")
	}
	ratio := float64(peak) / float64(trough)
	// Integrating 1+amp·sin over the peak/trough quarters gives
	// (1 + amp·2√2/π) / (1 − amp·2√2/π) ≈ 2.86 for amp 0.6.
	if ratio < 1.8 || ratio > 4.5 {
		t.Errorf("peak/trough quarter ratio = %.2f, want diurnal modulation in [1.8, 4.5]", ratio)
	}
}

// Heavy-hitter stream: elephants take ~packetShare of the packets,
// the churn counter advances, and same-seed streams are identical.
func TestHeavyHitterWorkloadShareAndChurn(t *testing.T) {
	const flows = 100000
	const share = 0.8
	build := func() *HeavyHitterWorkload {
		w, err := NewHeavyHitterWorkload(200, flows, 10000, 4, 64, share, 128, 4, 16, 5)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := build()
	arr := drain(t, w)
	elephantPkts, totalPkts := 0, 0
	elephantArrivals := 0
	for _, a := range arr {
		totalPkts += a.Packets
		if a.Packets == 128 { // elephants are the only 128-packet flows
			elephantPkts += a.Packets
			elephantArrivals++
		}
	}
	got := float64(elephantPkts) / float64(totalPkts)
	if got < share-0.03 || got > share+0.03 {
		t.Errorf("elephant packet share = %.3f, want %.2f ± 0.03", got, share)
	}
	if elephantArrivals == 0 || elephantArrivals == len(arr) {
		t.Fatalf("elephant arrivals = %d of %d: mix degenerate", elephantArrivals, len(arr))
	}
	// Mouse churn advanced: mouse arrivals ≈ flows·(1−p) over a
	// 64-wide window living 16 arrivals each.
	if w.Churned() == 0 {
		t.Error("no mouse churn over 100k arrivals")
	}

	b := drain(t, build())
	if len(b) != len(arr) {
		t.Fatalf("same-seed runs yielded %d vs %d arrivals", len(arr), len(b))
	}
	for i := range arr {
		if arr[i] != b[i] {
			t.Fatalf("same-seed heavy-hitter streams diverge at arrival %d: %+v vs %+v", i, arr[i], b[i])
		}
	}
}

// Incast bursts: every burst has fanIn distinct sources, one victim,
// all arrivals inside the spread window, one burst per period.
func TestIncastWorkloadShape(t *testing.T) {
	const bursts = 20
	const fanIn = 16
	period := 100 * time.Millisecond
	spread := 5 * time.Millisecond
	w, err := NewIncastWorkload(64, bursts, fanIn, period, spread, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, w)
	if len(arr) != bursts*fanIn {
		t.Fatalf("%d arrivals, want %d bursts x %d", len(arr), bursts, fanIn)
	}
	for b := 0; b < bursts; b++ {
		burst := arr[b*fanIn : (b+1)*fanIn]
		victim := burst[0].Dst
		srcs := map[int]bool{}
		base := time.Duration(b) * period
		for _, a := range burst {
			if a.Dst != victim {
				t.Fatalf("burst %d has two victims: %d and %d", b, victim, a.Dst)
			}
			if a.Src == victim || srcs[a.Src] {
				t.Fatalf("burst %d source %d duplicated or equals victim", b, a.Src)
			}
			srcs[a.Src] = true
			if a.At < base || a.At >= base+spread {
				t.Fatalf("burst %d arrival at %v outside [%v, %v)", b, a.At, base, base+spread)
			}
		}
	}
}

// MergeWorkloads keeps global At order and unique flow ids.
func TestMergeWorkloads(t *testing.T) {
	p, err := NewPoissonWorkload(20, 500, 200, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIncastWorkload(20, 5, 8, 300*time.Millisecond, 10*time.Millisecond, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, MergeWorkloads(p, in))
	if len(arr) != 500+5*8 {
		t.Fatalf("merged %d arrivals, want %d", len(arr), 540)
	}
	ids := map[uint64]bool{}
	for _, a := range arr {
		if ids[a.FlowID] {
			t.Fatalf("duplicate flow id %d in merged stream", a.FlowID)
		}
		ids[a.FlowID] = true
	}
}
