package controlplane

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

// Events carries the asynchronous-message callbacks of a Controller.
// Nil fields drop the event. Callbacks run on the client's read loop:
// keep them short or hand off.
type Events struct {
	PacketIn    func(*openflow.PacketIn)
	FlowRemoved func(*openflow.FlowRemoved)
	PortStatus  func(*openflow.PortStatus)
	// SwitchError receives ERROR messages not correlated to a pending
	// request (e.g. a rejected flow-mod that was fire-and-forget).
	SwitchError func(*openflow.Error)
}

// Controller is the typed northbound client: the controller side of
// one OpenFlow channel with request/await-reply plumbing correlated by
// transaction id. It replaces the raw openflow.Conn loops the manager,
// daemons and tests used to hand-roll.
type Controller struct {
	cfg      Config
	events   Events
	conn     *openflow.Conn
	features *openflow.FeaturesReply
	lastRx   atomic.Int64

	mu      sync.Mutex
	pending map[uint32]chan openflow.Message
	err     error

	done      chan struct{}
	closeOnce sync.Once
}

// Connect performs the controller-side HELLO/FEATURES handshake over
// an established transport and starts the event loop (with keepalive
// probing per cfg). Messages arriving during the handshake are queued
// and dispatched once the loop runs.
func Connect(rw io.ReadWriteCloser, cfg Config, events Events) (*Controller, error) {
	c := &Controller{
		cfg:     cfg.withDefaults(),
		events:  events,
		conn:    openflow.NewConn(rw),
		pending: make(map[uint32]chan openflow.Message),
		done:    make(chan struct{}),
	}
	var early []openflow.Message
	features, err := c.conn.Handshake(func(m openflow.Message) { early = append(early, m) })
	if err != nil {
		c.conn.Close()
		return nil, fmt.Errorf("controlplane: handshake: %w", err)
	}
	c.features = features
	c.lastRx.Store(c.cfg.Clock.Now().UnixNano())
	for _, m := range early {
		c.dispatch(m)
	}
	go c.readLoop()
	go c.keepalive()
	return c, nil
}

// Features returns the switch identity from the handshake.
func (c *Controller) Features() *openflow.FeaturesReply { return c.features }

// DPID returns the switch's datapath id.
func (c *Controller) DPID() uint64 { return c.features.DatapathID }

// Done is closed when the channel dies (transport loss, dead peer, or
// Close); Err then reports why.
func (c *Controller) Done() <-chan struct{} { return c.done }

// Err returns the terminal channel error (nil while live or after a
// clean Close).
func (c *Controller) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the channel down and returns the transport's close
// error, if any.
func (c *Controller) Close() error {
	return c.teardown(nil)
}

// teardown shuts the controller down once, recording err as the
// terminal cause. It returns the transport's close error (nil when a
// prior teardown already ran).
func (c *Controller) teardown(err error) error {
	var cerr error
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.err = err
		c.mu.Unlock()
		close(c.done)
		cerr = c.conn.Close()
	})
	return cerr
}

// Send queues a message without awaiting any reply.
func (c *Controller) Send(m openflow.Message) error { return c.conn.Send(m) }

// FlowMod sends a flow-mod, defaulting the no-op wildcards the wire
// format needs (NoBuffer / PortAny / GroupAny) when left zero. Zero is
// safe as the "unset" sentinel for all three: 0 is not a valid port or
// group number, and the softswitch buffer pool never allocates buffer
// id 0.
func (c *Controller) FlowMod(fm *openflow.FlowMod) error {
	if fm.BufferID == 0 {
		fm.BufferID = openflow.NoBuffer
	}
	if fm.OutPort == 0 {
		fm.OutPort = openflow.PortAny
	}
	if fm.OutGroup == 0 {
		fm.OutGroup = openflow.GroupAny
	}
	return c.conn.Send(fm)
}

// Request sends m and awaits the reply bearing the same transaction
// id. An ERROR reply with that id is returned as the error (typed
// *openflow.Error).
func (c *Controller) Request(ctx context.Context, m openflow.Message) (openflow.Message, error) {
	if m.XID() == 0 {
		m.SetXID(c.conn.AllocXID())
	}
	ch := make(chan openflow.Message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[m.XID()] = ch
	c.mu.Unlock()
	unregister := func() {
		c.mu.Lock()
		delete(c.pending, m.XID())
		c.mu.Unlock()
	}
	if err := c.conn.Send(m); err != nil {
		unregister()
		return nil, err
	}
	select {
	case resp := <-ch:
		if e, ok := resp.(*openflow.Error); ok {
			return nil, e
		}
		return resp, nil
	case <-ctx.Done():
		unregister()
		return nil, ctx.Err()
	case <-c.done:
		if err := c.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("controlplane: channel closed")
	}
}

// AwaitBarrier sends a BARRIER_REQUEST and blocks until its reply: a
// real write-side fence, unlike the fire-and-forget barrier the old
// raw-conn path offered.
func (c *Controller) AwaitBarrier(ctx context.Context) error {
	_, err := c.Request(ctx, &openflow.BarrierRequest{})
	return err
}

// Multipart issues one multipart request and returns its reply.
func (c *Controller) Multipart(ctx context.Context, req *openflow.MultipartRequest) (*openflow.MultipartReply, error) {
	resp, err := c.Request(ctx, req)
	if err != nil {
		return nil, err
	}
	mp, ok := resp.(*openflow.MultipartReply)
	if !ok {
		return nil, fmt.Errorf("controlplane: unexpected %T to multipart request", resp)
	}
	return mp, nil
}

// FlowStats fetches flow statistics (openflow.TableAll for all
// tables).
func (c *Controller) FlowStats(ctx context.Context, tableID uint8) ([]openflow.FlowStats, error) {
	mp, err := c.Multipart(ctx, &openflow.MultipartRequest{
		MPType: openflow.MultipartFlow,
		Flow:   &openflow.FlowStatsRequest{TableID: tableID, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny},
	})
	if err != nil {
		return nil, err
	}
	return mp.Flows, nil
}

// PortStats fetches the per-port datapath counters.
func (c *Controller) PortStats(ctx context.Context) ([]openflow.PortStats, error) {
	mp, err := c.Multipart(ctx, &openflow.MultipartRequest{MPType: openflow.MultipartPortStats})
	if err != nil {
		return nil, err
	}
	return mp.Ports, nil
}

// RequestRole negotiates this connection's controller role and returns
// the role and generation id the switch settled on. A stale generation
// id surfaces as an *openflow.Error with ErrTypeRoleRequestFailed.
func (c *Controller) RequestRole(ctx context.Context, role uint32, generationID uint64) (uint32, uint64, error) {
	resp, err := c.Request(ctx, &openflow.RoleRequest{Role: role, GenerationID: generationID})
	if err != nil {
		return 0, 0, err
	}
	rr, ok := resp.(*openflow.RoleReply)
	if !ok {
		return 0, 0, fmt.Errorf("controlplane: unexpected %T to role request", resp)
	}
	return rr.Role, rr.GenerationID, nil
}

// SetAsyncConfig replaces the connection's async filter masks.
func (c *Controller) SetAsyncConfig(cfg openflow.AsyncConfig) error {
	return c.conn.Send(&openflow.SetAsync{AsyncConfig: cfg})
}

// AsyncConfig fetches the connection's async filter masks.
func (c *Controller) AsyncConfig(ctx context.Context) (openflow.AsyncConfig, error) {
	resp, err := c.Request(ctx, &openflow.GetAsyncRequest{})
	if err != nil {
		return openflow.AsyncConfig{}, err
	}
	ar, ok := resp.(*openflow.GetAsyncReply)
	if !ok {
		return openflow.AsyncConfig{}, fmt.Errorf("controlplane: unexpected %T to get-async request", resp)
	}
	return ar.AsyncConfig, nil
}

func (c *Controller) readLoop() {
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.teardown(fmt.Errorf("controlplane: channel read: %w", err))
			return
		}
		c.lastRx.Store(c.cfg.Clock.Now().UnixNano())
		c.dispatch(m)
	}
}

// dispatch routes one received message: solicited reply types resolve
// by transaction id; async types go to the event callbacks. Async
// events are never matched against pending xids, so a switch reusing a
// transaction id for a packet-in cannot steal a request's reply.
func (c *Controller) dispatch(m openflow.Message) {
	switch t := m.(type) {
	case *openflow.EchoRequest:
		reply := &openflow.EchoReply{Data: t.Data}
		reply.SetXID(t.XID())
		_ = c.conn.Send(reply)
	case *openflow.EchoReply, *openflow.Hello:
		// Liveness only.
	case *openflow.BarrierReply, *openflow.MultipartReply, *openflow.RoleReply, *openflow.GetAsyncReply, *openflow.FeaturesReply:
		c.resolve(m)
	case *openflow.Error:
		if !c.resolve(m) && c.events.SwitchError != nil {
			c.events.SwitchError(t)
		}
	case *openflow.PacketIn:
		if c.events.PacketIn != nil {
			c.events.PacketIn(t)
		}
	case *openflow.FlowRemoved:
		if c.events.FlowRemoved != nil {
			c.events.FlowRemoved(t)
		}
	case *openflow.PortStatus:
		if c.events.PortStatus != nil {
			c.events.PortStatus(t)
		}
	}
}

// resolve hands a solicited reply to its waiting Request.
func (c *Controller) resolve(m openflow.Message) bool {
	c.mu.Lock()
	ch, ok := c.pending[m.XID()]
	if ok {
		delete(c.pending, m.XID())
	}
	c.mu.Unlock()
	if ok {
		ch <- m
	}
	return ok
}

// keepalive probes the switch like the switch side probes us.
func (c *Controller) keepalive() {
	if c.cfg.EchoInterval < 0 {
		return
	}
	t := netem.NewTicker(c.cfg.Clock, c.cfg.EchoInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			idle := c.cfg.Clock.Now().Sub(time.Unix(0, c.lastRx.Load()))
			if idle > c.cfg.EchoTimeout {
				c.teardown(fmt.Errorf("controlplane: switch dead (%v since last rx)", idle))
				return
			}
			_ = c.conn.Send(&openflow.EchoRequest{})
		}
	}
}
