package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is a committed snapshot of accepted diagnostics. It lets a
// new analyzer land strict — every finding it would newly report is
// recorded once, reviewed, and burned down over time — without the
// historical findings blocking CI. The file is JSON so diffs review
// line by line.
//
// A baseline is matched against a run's diagnostics as a multiset
// keyed on (analyzer, file, message): line numbers shift with every
// edit above a finding, so they are recorded for human orientation but
// ignored when matching. Entries that match nothing in the current run
// are *stale* — the finding was fixed (or the analyzer changed) and
// the entry must be deleted, otherwise the baseline itself rots; Apply
// surfaces them and harmlesslint fails on them.
type Baseline struct {
	// Version guards the schema; bump on incompatible change.
	Version int `json:"version"`
	// Tool documents the generator for the curious reader.
	Tool    string          `json:"tool,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted diagnostic.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// BaselineVersion is the current schema version.
const BaselineVersion = 1

// NewBaseline snapshots diags as a fresh baseline.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{Version: BaselineVersion, Tool: "harmlesslint", Entries: []BaselineEntry{}}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Message:  d.Message,
		})
	}
	return b
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d (regenerate with -write-baseline)", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Save writes the baseline as indented JSON with a trailing newline.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineKey is the matching identity of one entry.
type baselineKey struct {
	analyzer, file, message string
}

// Apply splits diags into the findings not covered by the baseline
// (new — these fail the run) and reports the baseline entries nothing
// matched (stale — these fail the run too, so the baseline can only
// shrink honestly). Matching is multiset: an entry suppresses exactly
// one diagnostic with the same (analyzer, file, message).
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey{e.Analyzer, e.File, e.Message}]++
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.Pos.Filename, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
