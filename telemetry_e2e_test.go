package harmless_test

// End-to-end telemetry exactness over the full HARMLESS deployment:
// the acceptance check that the in-process collector's exported
// byte/packet totals equal SS_1's datapath counters after real mixed
// traffic (ARP, ICMP pings, UDP bursts) has crossed the migrated
// switch — through trunk ingress, both patch hops, and the microflow
// cache.

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// rxTotals sums a switch's per-port ingress counters — every frame
// the dispatch path accepted, which is exactly the set telemetry must
// account (the test traffic contains no unparseable frames).
func rxTotals(sw *softswitch.Switch) (pkts, bytes uint64) {
	for _, no := range sw.PortNumbers() {
		c := sw.PortCounters(no)
		pkts += c.RxPackets.Load()
		bytes += c.RxBytes.Load()
	}
	return
}

func TestTelemetryEndToEndExactness(t *testing.T) {
	dep, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := dep.WaitConnected(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	tab := telemetry.NewTable(telemetry.Config{Shards: 2})
	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Hour)
	dep.S4.SS1.SetTelemetry(tab)
	// Anything that crossed SS_1 before the attach (controller
	// bring-up) is outside telemetry's window; measure deltas.
	basePkts, baseBytes := rxTotals(dep.S4.SS1)

	// Mixed traffic: ARP resolution + ICMP echo both ways, then UDP
	// bursts per-frame and batched. Links are synchronous, so when
	// these calls return the datapath is quiesced.
	for i := 0; i < 3; i++ {
		if err := dep.Hosts[1].Ping(dep.Hosts[2].IP, 2*time.Second); err != nil {
			t.Fatalf("ping h1->h2: %v", err)
		}
	}
	if err := dep.Hosts[2].Ping(dep.Hosts[3].IP, 2*time.Second); err != nil {
		t.Fatalf("ping h2->h3: %v", err)
	}
	mkUDP := func(sport uint16) []byte {
		pl := pkt.Payload("telemetry-e2e")
		f, err := pkt.Serialize(
			&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
			&pkt.UDP{SrcPort: sport, DstPort: 9},
			&pl,
		)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for i := 0; i < 20; i++ {
		dep.Hosts[1].SendRaw(mkUDP(uint16(7000 + i%5)))
	}
	vec := make([][]byte, 16)
	for i := range vec {
		vec[i] = mkUDP(uint16(7000 + i%5))
	}
	dep.Hosts[1].SendRawBatch(vec)

	// Flush everything and compare against the datapath's own books.
	tab.FlushAll(time.Now().UnixNano())
	agg.Flush()
	rxPkts, rxBytes := rxTotals(dep.S4.SS1)
	wantPkts, wantBytes := rxPkts-basePkts, rxBytes-baseBytes
	gotPkts, gotBytes := col.Totals()
	if gotPkts != wantPkts || gotBytes != wantBytes {
		t.Fatalf("collector totals %d pkts / %d bytes; SS_1 ingress saw %d / %d",
			gotPkts, gotBytes, wantPkts, wantBytes)
	}
	if lost := tab.Counters().RecordsLost.Load(); lost != 0 {
		t.Fatalf("%d export records lost on the drain ring", lost)
	}
	// The UDP conversation must be visible as a top talker with the
	// right 5-tuple.
	var found bool
	for _, f := range col.Flows() {
		if f.Key.Proto == pkt.IPProtoUDP && f.Key.L4Dst == 9 && f.Key.IPSrc == fabric.HostIP(1) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("UDP burst flow missing from collector")
	}
}
