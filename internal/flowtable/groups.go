package flowtable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Group is one installed group entry. A Group is IMMUTABLE once
// published: the datapath reads Type and Buckets lock-free after
// GroupTable.Get, so a group-mod never mutates a live Group in place —
// GroupModify installs a replacement that shares the counter block
// (see groupCounters), keeping statistics exact across the swap.
type Group struct {
	ID      uint32
	Type    uint8
	Buckets []openflow.Bucket

	counters atomic.Pointer[groupCounters]
}

// groupCounters is the statistics block shared between a group and its
// modify-replacements, so concurrent hits racing a group-mod are never
// lost.
type groupCounters struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
}

// stats returns the counter block, creating it on first use (groups
// installed via Apply get theirs eagerly; zero-value Groups built by
// hand initialize here, with a CAS so racing initializers converge on
// one block and no count is lost).
func (g *Group) stats() *groupCounters {
	if c := g.counters.Load(); c != nil {
		return c
	}
	g.counters.CompareAndSwap(nil, &groupCounters{})
	return g.counters.Load()
}

// Packets returns the group's packet counter.
func (g *Group) Packets() uint64 { return g.stats().packets.Load() }

// Hit accounts one packet through the group.
func (g *Group) Hit(n int) {
	c := g.stats()
	c.packets.Add(1)
	c.bytes.Add(uint64(n))
}

// SelectBucket picks the bucket for a packet in a SELECT group using a
// deterministic weighted hash so that one flow always hits the same
// backend (flow affinity, as real switches implement it). Returns nil
// for empty groups.
func (g *Group) SelectBucket(hash uint64) *openflow.Bucket {
	if len(g.Buckets) == 0 {
		return nil
	}
	if g.Type != openflow.GroupTypeSelect {
		return &g.Buckets[0]
	}
	var total uint64
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		total += w
	}
	// Map the hash onto the cumulative weight line.
	point := hash % total
	var acc uint64
	for i := range g.Buckets {
		w := uint64(g.Buckets[i].Weight)
		if w == 0 {
			w = 1
		}
		acc += w
		if point < acc {
			return &g.Buckets[i]
		}
	}
	return &g.Buckets[len(g.Buckets)-1]
}

// FlowHash computes the symmetric-free 5-tuple-ish hash used for
// SELECT bucket affinity (FNV-1a over addresses, proto, ports).
func FlowHash(k *pkt.Key) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range k.EthSrc {
		mix(b)
	}
	for _, b := range k.EthDst {
		mix(b)
	}
	for _, b := range k.IPSrc {
		mix(b)
	}
	for _, b := range k.IPDst {
		mix(b)
	}
	mix(k.IPProto)
	mix(byte(k.L4Src >> 8))
	mix(byte(k.L4Src))
	mix(byte(k.L4Dst >> 8))
	mix(byte(k.L4Dst))
	// FNV's low bits avalanche poorly (parity is preserved through
	// the final multiply), which would bias modulo bucket selection;
	// finish with a splitmix64-style scrambler.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// GroupTable holds the switch's groups.
type GroupTable struct {
	mu      sync.RWMutex
	groups  map[uint32]*Group
	version atomic.Uint64
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[uint32]*Group)}
}

// Version returns the group-mod revision counter, bumped on every
// successful Apply. Cached forwarding decisions that traverse a group
// record it and revalidate on hit, mirroring Table.Version.
func (gt *GroupTable) Version() uint64 { return gt.version.Load() }

// Apply executes a GroupMod.
func (gt *GroupTable) Apply(gm *openflow.GroupMod) error {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	switch gm.Command {
	case openflow.GroupAdd:
		if _, ok := gt.groups[gm.GroupID]; ok {
			return fmt.Errorf("flowtable: group %d exists", gm.GroupID)
		}
		ng := &Group{ID: gm.GroupID, Type: gm.GroupType, Buckets: gm.Buckets}
		ng.counters.Store(&groupCounters{})
		gt.groups[gm.GroupID] = ng
	case openflow.GroupModify:
		g, ok := gt.groups[gm.GroupID]
		if !ok {
			return fmt.Errorf("flowtable: group %d unknown", gm.GroupID)
		}
		// Publish a replacement instead of mutating the live group: a
		// datapath reader holding the old *Group keeps a consistent
		// Type/Buckets snapshot, and the shared counter block keeps
		// racing hits accounted.
		ng := &Group{ID: gm.GroupID, Type: gm.GroupType, Buckets: gm.Buckets}
		ng.counters.Store(g.stats())
		gt.groups[gm.GroupID] = ng
	case openflow.GroupDelete:
		if gm.GroupID == openflow.GroupAny {
			gt.groups = make(map[uint32]*Group)
			gt.version.Add(1)
			return nil
		}
		delete(gt.groups, gm.GroupID)
	default:
		return fmt.Errorf("flowtable: unknown group command %d", gm.Command)
	}
	gt.version.Add(1)
	return nil
}

// Get looks up a group.
func (gt *GroupTable) Get(id uint32) (*Group, bool) {
	gt.mu.RLock()
	defer gt.mu.RUnlock()
	g, ok := gt.groups[id]
	return g, ok
}

// Len returns the number of groups.
func (gt *GroupTable) Len() int {
	gt.mu.RLock()
	defer gt.mu.RUnlock()
	return len(gt.groups)
}

// Meter implements a token-bucket rate limiter for one OpenFlow meter.
type Meter struct {
	ID    uint32
	Rate  uint64 // tokens/second (packets or kbits per flags)
	Burst uint64 // bucket depth
	PktPS bool   // true: packets/s; false: kbits/s

	mu     sync.Mutex
	tokens float64
	last   time.Time

	dropped atomic.Uint64
	passed  atomic.Uint64
}

// Allow consumes tokens for one packet of size bytes, reporting
// whether it passes the meter.
func (m *Meter) Allow(now time.Time, size int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last.IsZero() {
		m.last = now
		m.tokens = float64(m.Burst)
	}
	elapsed := now.Sub(m.last).Seconds()
	if elapsed > 0 {
		m.tokens += elapsed * float64(m.Rate)
		if m.tokens > float64(m.Burst) {
			m.tokens = float64(m.Burst)
		}
		m.last = now
	}
	need := 1.0
	if !m.PktPS {
		need = float64(size*8) / 1000.0 // kbits
	}
	if m.tokens >= need {
		m.tokens -= need
		m.passed.Add(1)
		return true
	}
	m.dropped.Add(1)
	return false
}

// Dropped returns the number of packets dropped by the meter.
func (m *Meter) Dropped() uint64 { return m.dropped.Load() }

// Passed returns the number of packets passed by the meter.
func (m *Meter) Passed() uint64 { return m.passed.Load() }

// MeterTable holds the switch's meters.
type MeterTable struct {
	clock  netem.Clock
	mu     sync.RWMutex
	meters map[uint32]*Meter
}

// NewMeterTable returns an empty meter table.
func NewMeterTable(clock netem.Clock) *MeterTable {
	if clock == nil {
		clock = netem.RealClock{}
	}
	return &MeterTable{clock: clock, meters: make(map[uint32]*Meter)}
}

// Apply executes a MeterMod. Only single drop bands are supported,
// which is what rate-limiting use cases need.
func (mt *MeterTable) Apply(mm *openflow.MeterMod) error {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	switch mm.Command {
	case openflow.MeterAdd, openflow.MeterModify:
		if mm.Command == openflow.MeterAdd {
			if _, ok := mt.meters[mm.MeterID]; ok {
				return fmt.Errorf("flowtable: meter %d exists", mm.MeterID)
			}
		}
		if len(mm.Bands) != 1 || mm.Bands[0].Type != openflow.MeterBandDrop {
			return fmt.Errorf("flowtable: meter %d: exactly one drop band supported", mm.MeterID)
		}
		m := &Meter{
			ID:    mm.MeterID,
			Rate:  uint64(mm.Bands[0].Rate),
			Burst: uint64(mm.Bands[0].BurstSize),
			PktPS: mm.Flags&openflow.MeterFlagPktps != 0,
		}
		if m.Burst == 0 {
			m.Burst = m.Rate // sensible default: 1s worth
		}
		mt.meters[mm.MeterID] = m
	case openflow.MeterDelete:
		delete(mt.meters, mm.MeterID)
	default:
		return fmt.Errorf("flowtable: unknown meter command %d", mm.Command)
	}
	return nil
}

// Pass runs a packet through meter id; unknown meters pass everything
// (per spec, using an absent meter is an error at flow-mod time; the
// datapath fails open).
func (mt *MeterTable) Pass(id uint32, size int) bool {
	mt.mu.RLock()
	m := mt.meters[id]
	mt.mu.RUnlock()
	if m == nil {
		return true
	}
	return m.Allow(mt.clock.Now(), size)
}

// Get looks up a meter.
func (mt *MeterTable) Get(id uint32) (*Meter, bool) {
	mt.mu.RLock()
	defer mt.mu.RUnlock()
	m, ok := mt.meters[id]
	return m, ok
}
