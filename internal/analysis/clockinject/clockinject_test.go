package clockinject_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/clockinject"
)

func TestClockInject(t *testing.T) {
	analysistest.Run(t, "testdata/src/netem", "netem", clockinject.Analyzer)
}

func TestClockInjectOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "outofscope", clockinject.Analyzer)
}

func TestScopeCoversRepoPackages(t *testing.T) {
	for _, path := range []string{
		"github.com/harmless-sdn/harmless/internal/sim",
		"github.com/harmless-sdn/harmless/internal/netem",
		"github.com/harmless-sdn/harmless/internal/controlplane",
		"github.com/harmless-sdn/harmless/internal/telemetry",
		"github.com/harmless-sdn/harmless/internal/softswitch",
		"github.com/harmless-sdn/harmless/internal/softswitch/runtime",
		"github.com/harmless-sdn/harmless/internal/fabric",
	} {
		if !clockinject.Scope.MatchString(path) {
			t.Errorf("scope must cover %s", path)
		}
	}
	for _, path := range []string{
		"github.com/harmless-sdn/harmless/internal/openflow",
		"github.com/harmless-sdn/harmless/internal/stats",
		"github.com/harmless-sdn/harmless/cmd/harmlessd",
	} {
		if clockinject.Scope.MatchString(path) {
			t.Errorf("scope must not cover %s", path)
		}
	}
}
