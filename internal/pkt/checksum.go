package pkt

import "encoding/binary"

// Internet checksum (RFC 1071) helpers, plus the incremental-update
// form (RFC 1624) used by the in-place field mutators so that rewriting
// an IP address or L4 port does not require re-summing the payload.

// onesSum accumulates the 16-bit one's-complement sum of data into sum.
// The caller folds and complements at the end.
func onesSum(data []byte, sum uint32) uint32 {
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if i < n { // odd trailing byte, padded with zero
		sum += uint32(data[i]) << 8
	}
	return sum
}

// foldChecksum folds a 32-bit accumulated sum into a 16-bit
// one's-complement checksum.
func foldChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Checksum computes the Internet checksum over data.
func Checksum(data []byte) uint16 {
	return foldChecksum(onesSum(data, 0))
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header
// used by TCP and UDP checksums.
func pseudoHeaderSum(src, dst IPv4, proto uint8, l4len uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// L4Checksum computes a TCP or UDP checksum including the IPv4
// pseudo-header. segment must contain the full L4 header and payload
// with the checksum field zeroed.
func L4Checksum(src, dst IPv4, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, uint16(len(segment)))
	return foldChecksum(onesSum(segment, sum))
}

// updateChecksum16 applies the RFC 1624 incremental update to the
// checksum stored at cksum[0:2] when a 16-bit word changes from old to
// new: HC' = ~(~HC + ~m + m').
func updateChecksum16(cksum []byte, old, new uint16) {
	hc := binary.BigEndian.Uint16(cksum)
	sum := uint32(^hc) + uint32(^old) + uint32(new)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	binary.BigEndian.PutUint16(cksum, ^uint16(sum))
}

// updateChecksum32 is updateChecksum16 for a 32-bit field (two words).
func updateChecksum32(cksum []byte, old, new uint32) {
	updateChecksum16(cksum, uint16(old>>16), uint16(new>>16))
	updateChecksum16(cksum, uint16(old), uint16(new))
}
