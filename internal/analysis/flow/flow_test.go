package flow_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/flow"
)

// checkSrc typechecks one in-memory fixture package.
func checkSrc(t *testing.T, src string) (*analysis.Pass, *token.FileSet) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.CheckFixture(fset, "fixture", []string{path})
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	a := &analysis.Analyzer{Name: "flowtest", Run: func(*analysis.Pass) error { return nil }}
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(analysis.Diagnostic) {})
	return pass, fset
}

// mapRangeConfig taints map ranges and cleanses sort.* calls.
func mapRangeConfig(pass *analysis.Pass) flow.Config {
	return flow.Config{
		SourceRange: func(x ast.Expr) bool {
			tv, ok := pass.TypesInfo.Types[x]
			if !ok || tv.Type == nil {
				return false
			}
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		},
		Cleanse: func(call *ast.CallExpr) bool {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return false
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			return ok && pn.Imported().Path() == "sort"
		},
	}
}

// taintAtLine runs the tracker and records, per call to probe(x), the
// taintedness of the argument at that program point.
func taintAtLine(t *testing.T, src string) map[int]bool {
	t.Helper()
	pass, fset := checkSrc(t, src)
	cfg := mapRangeConfig(pass)
	got := make(map[int]bool)
	cfg.Enter = func(tr *flow.Tracker, n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
			_, tainted := tr.TaintedAt(call.Args[0])
			got[fset.Position(call.Pos()).Line] = tainted
		}
	}
	flow.Run(pass, cfg)
	return got
}

func TestMapRangeTaintAndSortCleanse(t *testing.T) {
	got := taintAtLine(t, `package fixture

import "sort"

func probe(any) {}

func f(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	probe(keys) // line 12: tainted
	sort.Strings(keys)
	probe(keys) // line 14: cleansed
}
`)
	if !got[12] {
		t.Errorf("keys must be tainted before the sort")
	}
	if got[14] {
		t.Errorf("keys must be clean after sort.Strings")
	}
}

func TestTaintThroughDerivedValues(t *testing.T) {
	got := taintAtLine(t, `package fixture

import "strings"

func probe(any) {}

type rec struct{ s string }

func f(m map[string]int) {
	var keys []string
	for k, v := range m {
		_ = v
		keys = append(keys, k)
	}
	joined := strings.Join(keys, ",")
	probe(joined) // line 16: derived data stays tainted
	r := rec{s: joined}
	probe(r) // line 18: composite literal carries it
	clean := "x"
	probe(clean) // line 20: untouched variable is clean
}
`)
	for line, want := range map[int]bool{16: true, 18: true, 20: false} {
		if got[line] != want {
			t.Errorf("line %d tainted = %v, want %v", line, got[line], want)
		}
	}
}

func TestReturnSummaryAndArgToParam(t *testing.T) {
	got := taintAtLine(t, `package fixture

func probe(any) {}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sink(v []string) {
	probe(v) // line 14: parameter tainted by caller's argument
}

func caller(m map[string]int) {
	ks := unsortedKeys(m)
	probe(ks) // line 19: summary taints the call site
	sink(ks)
}
`)
	for _, line := range []int{14, 19} {
		if !got[line] {
			t.Errorf("line %d must be tainted", line)
		}
	}
}

func TestStrongUpdateClears(t *testing.T) {
	got := taintAtLine(t, `package fixture

func probe(any) {}

func f(m map[string]string) {
	s := ""
	for _, v := range m {
		s += v
	}
	probe(s) // line 10: accumulated from iteration
	s = "reset"
	probe(s) // line 12: strong update cleared it
}
`)
	if !got[10] {
		t.Errorf("accumulated string must be tainted")
	}
	if got[12] {
		t.Errorf("reassigned string must be clean")
	}
}

func TestCallGraphReachable(t *testing.T) {
	pass, _ := checkSrc(t, `package fixture

type T struct{}

func (t *T) Close() { t.helperA() }
func (t *T) helperA() { helperB() }
func helperB() {}
func unrelated() {}
func callback() {}
func (t *T) Stop() { run(callback) }
func run(f func()) { f() }
`)
	g := flow.NewGraph(pass)
	reach := g.Reachable(func(fn *types.Func) bool {
		return fn.Name() == "Close" || fn.Name() == "Stop"
	})
	names := make(map[string]bool)
	for fn := range reach {
		names[fn.Name()] = true
	}
	for _, want := range []string{"Close", "helperA", "helperB", "Stop", "run", "callback"} {
		if !names[want] {
			t.Errorf("%s must be reachable, got %v", want, names)
		}
	}
	if names["unrelated"] {
		t.Errorf("unrelated must not be reachable")
	}
}
