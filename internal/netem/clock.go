// Package netem emulates the physical substrate HARMLESS runs on:
// full-duplex point-to-point links between device ports, with optional
// latency, bandwidth and loss models. It replaces the wires, NICs and
// DPDK plumbing of the paper's testbed while preserving what the
// evaluation depends on: hop count, FIFO ordering per direction, and
// serialization/propagation delay.
//
// Links run in one of two modes:
//
//   - Synchronous (default): Send delivers the frame to the peer's
//     receiver in the calling goroutine. Deterministic and fast; used
//     by unit tests and the throughput benchmarks where queueing is
//     not under study. Devices must not hold locks while sending (a
//     hairpinned frame can re-enter the sending device on the same
//     stack).
//
//   - Asynchronous: each direction has a FIFO queue drained by its own
//     goroutine which applies the latency/bandwidth model in real
//     time. Used by the latency experiments (E3).
package netem

import (
	"sync"
	"time"
)

// Clock abstracts time so that aging and timeout logic in the devices
// is testable without real sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// ManualClock is a Clock that only moves when Advance is called.
// The zero value starts at a fixed arbitrary epoch; safe for
// concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a manual clock starting at a fixed epoch.
func NewManualClock() *ManualClock {
	return &ManualClock{t: time.Date(2017, 8, 22, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (m *ManualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d.
func (m *ManualClock) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}
