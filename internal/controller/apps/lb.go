package apps

import (
	"fmt"
	"math/bits"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Backend is one load-balanced server.
type Backend struct {
	IP   pkt.IPv4
	MAC  pkt.MAC
	Port uint32 // switch port the backend is reachable through
}

// LoadBalancer implements demo use case (a): "equally distribute
// ingress web traffic between multiple backends based on matching of
// the source IP address". Clients address a virtual IP; the app
// partitions the client source-address space across the backends with
// masked ipv4_src matches (for power-of-two backend counts, as in the
// demo), falling back to an OpenFlow SELECT group otherwise. Reverse
// traffic is rewritten back to the virtual address, and ARP for the
// VIP is answered by the controller.
type LoadBalancer struct {
	controller.BaseApp
	// Table is the flow table this app owns.
	Table uint8
	// VIP and VMAC are the virtual service address.
	VIP  pkt.IPv4
	VMAC pkt.MAC
	// ServicePort is the TCP port being balanced (e.g. 80).
	ServicePort uint16
	// Backends receive the traffic.
	Backends []Backend
	// GroupID used when falling back to a SELECT group.
	GroupID uint32
}

// Name implements controller.App.
func (lb *LoadBalancer) Name() string { return "loadbalancer" }

// usesSourcePartitioning reports whether the source-IP scheme applies.
func (lb *LoadBalancer) usesSourcePartitioning() bool {
	n := len(lb.Backends)
	return n > 0 && bits.OnesCount(uint(n)) == 1
}

// SwitchConnected installs the virtual-service flows.
func (lb *LoadBalancer) SwitchConnected(sw *controller.SwitchHandle) {
	if len(lb.Backends) == 0 {
		return
	}
	if lb.usesSourcePartitioning() {
		lb.installSourcePartitioned(sw)
	} else {
		lb.installSelectGroup(sw)
	}
	lb.installReverse(sw)
	lb.installARPIntercept(sw)
}

// installSourcePartitioned matches clients by the low bits of their
// source address: backend i serves sources with ip_src & (n-1) == i.
func (lb *LoadBalancer) installSourcePartitioned(sw *controller.SwitchHandle) {
	n := len(lb.Backends)
	mask := pkt.IPv4{0, 0, 0, byte(n - 1)}
	for i, b := range lb.Backends {
		match := openflow.Match{}
		match.WithEthType(pkt.EtherTypeIPv4).
			WithIPProto(pkt.IPProtoTCP).
			WithIPv4Dst(lb.VIP).
			WithTCPDst(lb.ServicePort).
			WithIPv4SrcMasked(pkt.IPv4{0, 0, 0, byte(i)}, mask)
		_ = sw.InstallFlow(lb.Table, 300, match,
			&openflow.InstrApplyActions{Actions: lb.rewriteTo(b)})
	}
}

// installSelectGroup uses an OpenFlow SELECT group for non-power-of-
// two backend counts.
func (lb *LoadBalancer) installSelectGroup(sw *controller.SwitchHandle) {
	var buckets []openflow.Bucket
	for _, b := range lb.Backends {
		buckets = append(buckets, openflow.Bucket{
			Weight: 1, WatchPort: openflow.PortAny, WatchGroup: openflow.GroupAny,
			Actions: lb.rewriteTo(b),
		})
	}
	_ = sw.Send(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect,
		GroupID: lb.GroupID, Buckets: buckets,
	})
	match := openflow.Match{}
	match.WithEthType(pkt.EtherTypeIPv4).
		WithIPProto(pkt.IPProtoTCP).
		WithIPv4Dst(lb.VIP).
		WithTCPDst(lb.ServicePort)
	_ = sw.InstallFlow(lb.Table, 300, match,
		&openflow.InstrApplyActions{Actions: []openflow.Action{&openflow.ActionGroup{GroupID: lb.GroupID}}})
}

// rewriteTo produces the DNAT action list towards a backend.
func (lb *LoadBalancer) rewriteTo(b Backend) []openflow.Action {
	return []openflow.Action{
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMEthDst, Value: append([]byte{}, b.MAC[:]...)}},
		&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMIPv4Dst, Value: append([]byte{}, b.IP[:]...)}},
		&openflow.ActionOutput{Port: b.Port, MaxLen: 0xffff},
	}
}

// installReverse restores the virtual address on backend responses and
// hands them to the next table (the learning app) for delivery.
func (lb *LoadBalancer) installReverse(sw *controller.SwitchHandle) {
	for _, b := range lb.Backends {
		match := openflow.Match{}
		match.WithEthType(pkt.EtherTypeIPv4).
			WithIPProto(pkt.IPProtoTCP).
			WithIPv4Src(b.IP).
			WithTCPSrc(lb.ServicePort)
		_ = sw.InstallFlow(lb.Table, 300, match,
			&openflow.InstrApplyActions{Actions: []openflow.Action{
				&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMIPv4Src, Value: append([]byte{}, lb.VIP[:]...)}},
				&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMEthSrc, Value: append([]byte{}, lb.VMAC[:]...)}},
			}},
			&openflow.InstrGotoTable{TableID: lb.Table + 1},
		)
	}
}

// installARPIntercept sends ARP requests for the VIP to the controller.
func (lb *LoadBalancer) installARPIntercept(sw *controller.SwitchHandle) {
	match := openflow.Match{}
	match.WithEthType(pkt.EtherTypeARP).WithARPOp(pkt.ARPRequest).WithARPTPA(lb.VIP)
	_ = sw.InstallFlow(lb.Table, 400, match,
		&openflow.InstrApplyActions{Actions: []openflow.Action{
			&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff},
		}})
}

// PacketIn answers VIP ARP requests.
func (lb *LoadBalancer) PacketIn(sw *controller.SwitchHandle, pi *openflow.PacketIn) {
	if pi.TableID != lb.Table {
		return
	}
	inPort, ok := pi.InPort()
	if !ok {
		return
	}
	p := pkt.DecodeEthernet(pi.Data)
	arp := p.ARP()
	if arp == nil || arp.Op != pkt.ARPRequest || arp.TargetIP != lb.VIP {
		return
	}
	reply, err := pkt.Serialize(
		&pkt.Ethernet{Src: lb.VMAC, Dst: arp.SenderHW, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{
			Op:       pkt.ARPReply,
			SenderHW: lb.VMAC, SenderIP: lb.VIP,
			TargetHW: arp.SenderHW, TargetIP: arp.SenderIP,
		},
	)
	if err != nil {
		return
	}
	_ = sw.PacketOut(openflow.PortController, reply,
		&openflow.ActionOutput{Port: inPort, MaxLen: 0xffff})
}

// BackendName renders a backend for reporting.
func BackendName(b Backend) string { return fmt.Sprintf("%s:%d", b.IP, b.Port) }
