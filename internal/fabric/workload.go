package fabric

// Statistical workload models for fleet-scale simulation. Where the
// Generator family (traffic.go) prebuilds wire frames for datapath
// benchmark loops, these models emit abstract flow arrivals on a
// virtual timeline — who talks to whom, when, how much — for the
// flow-level fleet simulator and for driving packet-level scenarios.
// Every model is a deterministic pull stream: same parameters and
// seed, same arrival sequence, byte for byte.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// FlowArrival is one flow entering the fabric at virtual offset At
// from run start. Src and Dst index the topology's HostIDs slice.
type FlowArrival struct {
	At        time.Duration
	Src, Dst  int
	FrameSize int
	Packets   int
	FlowID    uint64
}

// Workload is a pull stream of flow arrivals in non-decreasing At
// order. ok=false ends the stream.
type Workload interface {
	Next() (arrival FlowArrival, ok bool)
}

// pickPair draws a src/dst host pair, src != dst (needs nHosts >= 2).
func pickPair(rng *rand.Rand, nHosts int) (int, int) {
	src := rng.Intn(nHosts)
	dst := rng.Intn(nHosts - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}

// pickSize draws a frame size from the IMIX ladder.
func pickSize(rng *rand.Rand) int {
	return IMIXSizes[rng.Intn(len(IMIXSizes))]
}

// PoissonWorkload emits flows as a homogeneous Poisson process:
// exponential inter-arrivals at a fixed rate, uniform host pairs, IMIX
// frame sizes, geometric-ish flow lengths around MeanPackets.
type PoissonWorkload struct {
	rng         *rand.Rand
	nHosts      int
	interval    float64 // mean inter-arrival, seconds
	meanPackets int
	remaining   int
	now         float64 // seconds
	nextID      uint64
}

// NewPoissonWorkload builds a Poisson arrival stream of total flows at
// ratePerSec across nHosts hosts.
func NewPoissonWorkload(nHosts, flows int, ratePerSec float64, meanPackets int, seed int64) (*PoissonWorkload, error) {
	if nHosts < 2 {
		return nil, fmt.Errorf("fabric: poisson workload needs >= 2 hosts (got %d)", nHosts)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("fabric: poisson workload rate must be > 0 (got %g)", ratePerSec)
	}
	if meanPackets < 1 {
		meanPackets = 8
	}
	return &PoissonWorkload{
		rng:         rand.New(rand.NewSource(seed)),
		nHosts:      nHosts,
		interval:    1 / ratePerSec,
		meanPackets: meanPackets,
		remaining:   flows,
	}, nil
}

// Next implements Workload.
func (w *PoissonWorkload) Next() (FlowArrival, bool) {
	if w.remaining <= 0 {
		return FlowArrival{}, false
	}
	w.remaining--
	w.now += w.rng.ExpFloat64() * w.interval
	src, dst := pickPair(w.rng, w.nHosts)
	a := FlowArrival{
		At:        time.Duration(w.now * float64(time.Second)),
		Src:       src,
		Dst:       dst,
		FrameSize: pickSize(w.rng),
		Packets:   1 + w.rng.Intn(2*w.meanPackets-1),
		FlowID:    w.nextID,
	}
	w.nextID++
	return a, true
}

// DiurnalWorkload modulates a Poisson process with a sinusoidal daily
// cycle — the nonhomogeneous rate λ(t) = base·(1 + amp·sin(2πt/period))
// sampled by thinning, so peak-hour load is (1+amp)/(1-amp) times the
// trough. amp in [0,1).
type DiurnalWorkload struct {
	rng         *rand.Rand
	nHosts      int
	baseRate    float64 // flows/sec at the mean
	amp         float64
	period      float64 // seconds
	meanPackets int
	remaining   int
	now         float64
	nextID      uint64
}

// NewDiurnalWorkload builds a diurnally-modulated arrival stream.
func NewDiurnalWorkload(nHosts, flows int, baseRate, amp float64, period time.Duration, meanPackets int, seed int64) (*DiurnalWorkload, error) {
	if nHosts < 2 {
		return nil, fmt.Errorf("fabric: diurnal workload needs >= 2 hosts (got %d)", nHosts)
	}
	if baseRate <= 0 || period <= 0 {
		return nil, fmt.Errorf("fabric: diurnal workload needs baseRate and period > 0")
	}
	if amp < 0 || amp >= 1 {
		return nil, fmt.Errorf("fabric: diurnal amplitude %g outside [0,1)", amp)
	}
	if meanPackets < 1 {
		meanPackets = 8
	}
	return &DiurnalWorkload{
		rng:         rand.New(rand.NewSource(seed)),
		nHosts:      nHosts,
		baseRate:    baseRate,
		amp:         amp,
		period:      period.Seconds(),
		meanPackets: meanPackets,
		remaining:   flows,
	}, nil
}

// Next implements Workload via Lewis-Shedler thinning: candidate
// arrivals at the peak rate λmax, each kept with probability
// λ(t)/λmax.
func (w *DiurnalWorkload) Next() (FlowArrival, bool) {
	if w.remaining <= 0 {
		return FlowArrival{}, false
	}
	lambdaMax := w.baseRate * (1 + w.amp)
	for {
		w.now += w.rng.ExpFloat64() / lambdaMax
		lambda := w.baseRate * (1 + w.amp*math.Sin(2*math.Pi*w.now/w.period))
		if w.rng.Float64()*lambdaMax <= lambda {
			break
		}
	}
	w.remaining--
	src, dst := pickPair(w.rng, w.nHosts)
	a := FlowArrival{
		At:        time.Duration(w.now * float64(time.Second)),
		Src:       src,
		Dst:       dst,
		FrameSize: pickSize(w.rng),
		Packets:   1 + w.rng.Intn(2*w.meanPackets-1),
		FlowID:    w.nextID,
	}
	w.nextID++
	return a, true
}

// HeavyHitterWorkload is the arrival-stream analogue of MixGenerator:
// a few long-lived elephant pairs carry packetShare of all packets
// while a churning window of short-lived mouse pairs supplies the
// rest. Mouse pairs slide through an 8x pool exactly like
// MixGenerator's frame window, so flow churn — the property HARMLESS
// control planes are sized against — shows up on the virtual timeline.
type HeavyHitterWorkload struct {
	rng          *rand.Rand
	nHosts       int
	interval     float64
	elephants    []FlowArrival // template pairs, reused per burst
	elephantProb float64
	elephantPkts int
	mousePkts    int
	mousePairs   [][2]int
	window       int
	start        int
	perWindow    int
	emitted      int
	churned      int
	remaining    int
	now          float64
	nextID       uint64
}

// NewHeavyHitterWorkload builds a heavy-hitter mix of `elephants`
// persistent pairs taking packetShare of packets over `mice`
// concurrently-active churning pairs, with Poisson arrivals at
// ratePerSec. Elephant arrivals carry elephantPkts packets each, mice
// mousePkts; the per-arrival elephant probability is solved from the
// share equation p·Pe/(p·Pe+(1-p)·Pm) = share.
func NewHeavyHitterWorkload(nHosts, flows int, ratePerSec float64, elephants, mice int,
	packetShare float64, elephantPkts, mousePkts, mouseLife int, seed int64) (*HeavyHitterWorkload, error) {
	if nHosts < 2 {
		return nil, fmt.Errorf("fabric: heavy-hitter workload needs >= 2 hosts (got %d)", nHosts)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("fabric: heavy-hitter workload rate must be > 0")
	}
	if elephants < 1 {
		elephants = 1
	}
	if mice < 1 {
		mice = 1
	}
	if packetShare <= 0 || packetShare >= 1 {
		packetShare = 0.8
	}
	if elephantPkts < 1 {
		elephantPkts = 128
	}
	if mousePkts < 1 {
		mousePkts = 4
	}
	if mouseLife < 1 {
		mouseLife = 16
	}
	w := &HeavyHitterWorkload{
		rng:          rand.New(rand.NewSource(seed)),
		nHosts:       nHosts,
		interval:     1 / ratePerSec,
		elephantPkts: elephantPkts,
		mousePkts:    mousePkts,
		window:       mice,
		perWindow:    mouseLife * mice,
		remaining:    flows,
	}
	pe, pm := float64(elephantPkts), float64(mousePkts)
	w.elephantProb = packetShare * pm / (pe*(1-packetShare) + packetShare*pm)
	for i := 0; i < elephants; i++ {
		src, dst := pickPair(w.rng, nHosts)
		w.elephants = append(w.elephants, FlowArrival{
			Src: src, Dst: dst, FrameSize: 1500, Packets: elephantPkts, FlowID: uint64(i),
		})
	}
	w.nextID = uint64(elephants)
	pool := make([][2]int, 8*mice)
	for i := range pool {
		src, dst := pickPair(w.rng, nHosts)
		pool[i] = [2]int{src, dst}
	}
	w.mousePairs = pool
	return w, nil
}

// Next implements Workload. Elephant arrivals reuse their flow id
// (re-offered traffic on a persistent pair); mouse arrivals get fresh
// ids, and the active pair window slides after perWindow mouse
// arrivals.
func (w *HeavyHitterWorkload) Next() (FlowArrival, bool) {
	if w.remaining <= 0 {
		return FlowArrival{}, false
	}
	w.remaining--
	w.now += w.rng.ExpFloat64() * w.interval
	at := time.Duration(w.now * float64(time.Second))
	if w.rng.Float64() < w.elephantProb {
		a := w.elephants[w.rng.Intn(len(w.elephants))]
		a.At = at
		return a, true
	}
	w.emitted++
	if w.emitted >= w.perWindow {
		w.emitted = 0
		w.start = (w.start + w.window) % len(w.mousePairs)
		w.churned += w.window
	}
	pair := w.mousePairs[(w.start+w.rng.Intn(w.window))%len(w.mousePairs)]
	a := FlowArrival{
		At:        at,
		Src:       pair[0],
		Dst:       pair[1],
		FrameSize: pickSize(w.rng),
		Packets:   w.mousePkts,
		FlowID:    w.nextID,
	}
	w.nextID++
	return a, true
}

// Churned returns how many short-lived pairs have completed so far.
func (w *HeavyHitterWorkload) Churned() int { return w.churned }

// IncastWorkload emits periodic incast bursts: every period, fanIn
// distinct sources fire one flow each at a single victim host within a
// burstSpread window — the partition/aggregate pattern that stresses
// a ToR's downlink.
type IncastWorkload struct {
	rng       *rand.Rand
	nHosts    int
	fanIn     int
	period    time.Duration
	spread    time.Duration
	packets   int
	remaining int // bursts
	burst     int
	inBurst   int
	victim    int
	srcs      []int
	jitters   []time.Duration
	nextID    uint64
}

// NewIncastWorkload builds `bursts` incast events of fanIn senders
// each, one event per period, senders spread across burstSpread.
func NewIncastWorkload(nHosts, bursts, fanIn int, period, burstSpread time.Duration, packets int, seed int64) (*IncastWorkload, error) {
	if nHosts < 2 {
		return nil, fmt.Errorf("fabric: incast workload needs >= 2 hosts (got %d)", nHosts)
	}
	if fanIn < 1 || fanIn >= nHosts {
		return nil, fmt.Errorf("fabric: incast fan-in %d must be in [1, nHosts)", fanIn)
	}
	if period <= 0 {
		return nil, fmt.Errorf("fabric: incast period must be > 0")
	}
	if burstSpread < 0 || burstSpread >= period {
		burstSpread = period / 10
	}
	if packets < 1 {
		packets = 4
	}
	return &IncastWorkload{
		rng:       rand.New(rand.NewSource(seed)),
		nHosts:    nHosts,
		fanIn:     fanIn,
		period:    period,
		spread:    burstSpread,
		packets:   packets,
		remaining: bursts,
		srcs:      make([]int, 0, fanIn),
	}, nil
}

// Next implements Workload. Arrivals within one burst share a victim;
// each sender is distinct. Per-burst jitters are drawn up front and
// sorted so the stream keeps its non-decreasing At contract.
func (w *IncastWorkload) Next() (FlowArrival, bool) {
	if w.inBurst == 0 {
		if w.remaining <= 0 {
			return FlowArrival{}, false
		}
		w.remaining--
		w.victim = w.rng.Intn(w.nHosts)
		w.srcs = w.srcs[:0]
		used := map[int]bool{w.victim: true}
		for len(w.srcs) < w.fanIn {
			s := w.rng.Intn(w.nHosts)
			if !used[s] {
				used[s] = true
				w.srcs = append(w.srcs, s)
			}
		}
		w.jitters = w.jitters[:0]
		for i := 0; i < w.fanIn; i++ {
			var j time.Duration
			if w.spread > 0 {
				j = time.Duration(w.rng.Int63n(int64(w.spread)))
			}
			w.jitters = append(w.jitters, j)
		}
		sort.Slice(w.jitters, func(i, j int) bool { return w.jitters[i] < w.jitters[j] })
		w.inBurst = w.fanIn
	}
	i := w.fanIn - w.inBurst
	w.inBurst--
	base := time.Duration(w.burst) * w.period
	if w.inBurst == 0 {
		w.burst++
	}
	a := FlowArrival{
		At:        base + w.jitters[i],
		Src:       w.srcs[i],
		Dst:       w.victim,
		FrameSize: 1500,
		Packets:   w.packets,
		FlowID:    w.nextID,
	}
	w.nextID++
	return a, true
}

// mergedWorkload interleaves streams in global At order (k-way merge
// over already-sorted inputs).
type mergedWorkload struct {
	heads []FlowArrival
	live  []bool
	srcs  []Workload
	next  uint64
}

// MergeWorkloads combines workloads into one stream ordered by At,
// reassigning FlowIDs so they stay unique across sources. Incast
// bursts layered on a diurnal baseline is the expected use.
func MergeWorkloads(ws ...Workload) Workload {
	m := &mergedWorkload{
		heads: make([]FlowArrival, len(ws)),
		live:  make([]bool, len(ws)),
		srcs:  ws,
	}
	for i, w := range ws {
		m.heads[i], m.live[i] = w.Next()
	}
	return m
}

// Next implements Workload.
func (m *mergedWorkload) Next() (FlowArrival, bool) {
	best := -1
	for i, ok := range m.live {
		if ok && (best < 0 || m.heads[i].At < m.heads[best].At) {
			best = i
		}
	}
	if best < 0 {
		return FlowArrival{}, false
	}
	a := m.heads[best]
	m.heads[best], m.live[best] = m.srcs[best].Next()
	a.FlowID = m.next
	m.next++
	return a, true
}
