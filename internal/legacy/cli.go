package legacy

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
)

// Dialect selects which vendor CLI the switch emulates. Both dialects
// share the industry-standard configuration grammar (Arista's CLI is
// deliberately Cisco-compatible); they differ in interface naming,
// banners and show-command formatting — exactly the differences a
// NAPALM-style driver layer must absorb.
type Dialect int

// Supported CLI dialects.
const (
	// DialectCiscoish emulates an IOS-like CLI
	// (interfaces GigabitEthernet0/N).
	DialectCiscoish Dialect = iota
	// DialectAristaish emulates an EOS-like CLI (interfaces EthernetN).
	DialectAristaish
)

// String implements fmt.Stringer.
func (d Dialect) String() string {
	switch d {
	case DialectCiscoish:
		return "ciscoish"
	case DialectAristaish:
		return "aristaish"
	}
	return fmt.Sprintf("Dialect(%d)", int(d))
}

// IfName renders the canonical interface name for a port number.
func (d Dialect) IfName(port int) string {
	if d == DialectAristaish {
		return fmt.Sprintf("Ethernet%d", port)
	}
	return fmt.Sprintf("GigabitEthernet0/%d", port)
}

// parsePort resolves an interface argument (full or abbreviated) to a
// port number, or 0 if unparsable.
func (d Dialect) parsePort(arg string) int {
	a := strings.ToLower(arg)
	switch d {
	case DialectCiscoish:
		// Accept gi0/N, gigabitethernet0/N, g0/N.
		for _, pfx := range []string{"gigabitethernet", "gig", "gi", "g"} {
			if strings.HasPrefix(a, pfx) {
				rest := strings.TrimPrefix(a, pfx)
				if !strings.HasPrefix(rest, "0/") {
					return 0
				}
				n, err := strconv.Atoi(strings.TrimPrefix(rest, "0/"))
				if err != nil {
					return 0
				}
				return n
			}
		}
	case DialectAristaish:
		for _, pfx := range []string{"ethernet", "eth", "et", "e"} {
			if strings.HasPrefix(a, pfx) {
				n, err := strconv.Atoi(strings.TrimPrefix(a, pfx))
				if err != nil {
					return 0
				}
				return n
			}
		}
	}
	return 0
}

// cliMode is the session's position in the command hierarchy.
type cliMode int

const (
	modeExec       cliMode = iota // user EXEC ">"
	modeEnable                    // privileged EXEC "#"
	modeConfig                    // global configuration
	modeConfigIf                  // interface configuration
	modeConfigVLAN                // VLAN configuration
)

// CLIServer exposes a Switch over a vendor-style command line. One
// server can serve many concurrent sessions; all state is per-session
// except the switch itself.
type CLIServer struct {
	sw           *Switch
	dialect      Dialect
	enableSecret string // empty means "enable" needs no password
	version      string
}

// NewCLIServer creates a CLI front-end for sw.
func NewCLIServer(sw *Switch, dialect Dialect) *CLIServer {
	v := "15.2(4)E10"
	if dialect == DialectAristaish {
		v = "4.20.1F"
	}
	return &CLIServer{sw: sw, dialect: dialect, version: v}
}

// SetEnableSecret requires a password for the enable command.
func (s *CLIServer) SetEnableSecret(pw string) { s.enableSecret = pw }

// Dialect returns the emulated dialect.
func (s *CLIServer) Dialect() Dialect { return s.dialect }

// Serve accepts connections on l until it is closed, running one
// session per connection.
func (s *CLIServer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs a single CLI session over rw until the peer quits or
// the transport fails.
func (s *CLIServer) ServeConn(rw io.ReadWriter) error {
	sess := &cliSession{srv: s, mode: modeExec}
	w := bufio.NewWriter(rw)
	fmt.Fprintf(w, "%s\r\n", s.banner())
	fmt.Fprint(w, sess.prompt())
	if err := w.Flush(); err != nil {
		return err
	}
	scanner := bufio.NewScanner(rw)
	scanner.Buffer(make([]byte, 16384), 16384)
	for scanner.Scan() {
		line := scanner.Text()
		out, quit := sess.handleLine(line)
		if out != "" {
			fmt.Fprint(w, out)
		}
		if quit {
			return w.Flush()
		}
		fmt.Fprint(w, sess.prompt())
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return scanner.Err()
}

func (s *CLIServer) banner() string {
	if s.dialect == DialectAristaish {
		return "Arista Networks EOS\r\nlast login: console"
	}
	return "User Access Verification"
}

// cliSession is the per-connection interpreter state.
type cliSession struct {
	srv             *CLIServer
	mode            cliMode
	curIf           int
	curVLAN         uint16
	waitingEnablePw bool
}

func (c *cliSession) prompt() string {
	h := c.srv.sw.Hostname()
	if c.waitingEnablePw {
		return "Password: "
	}
	switch c.mode {
	case modeExec:
		return h + ">"
	case modeEnable:
		return h + "#"
	case modeConfig:
		return h + "(config)#"
	case modeConfigIf:
		return h + "(config-if)#"
	case modeConfigVLAN:
		return h + "(config-vlan)#"
	}
	return h + ">"
}

const (
	errInvalid    = "% Invalid input detected\r\n"
	errIncomplete = "% Incomplete command\r\n"
)

// handleLine interprets one input line, returning the output text and
// whether the session should terminate.
func (c *cliSession) handleLine(line string) (string, bool) {
	if c.waitingEnablePw {
		c.waitingEnablePw = false
		if line == c.srv.enableSecret {
			c.mode = modeEnable
			return "", false
		}
		return "% Access denied\r\n", false
	}
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "!") {
		return "", false
	}
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	args := fields[1:]

	// Universal commands.
	switch cmd {
	case "exit", "quit", "logout":
		switch c.mode {
		case modeConfigIf, modeConfigVLAN:
			c.mode = modeConfig
			return "", false
		case modeConfig:
			c.mode = modeEnable
			return "", false
		default:
			return "", true
		}
	case "end":
		if c.mode >= modeConfig {
			c.mode = modeEnable
			return "", false
		}
		return errInvalid, false
	}

	switch c.mode {
	case modeExec:
		return c.handleExec(cmd, args)
	case modeEnable:
		return c.handleEnable(cmd, args, line)
	case modeConfig:
		return c.handleConfig(cmd, args)
	case modeConfigIf:
		return c.handleConfigIf(cmd, args)
	case modeConfigVLAN:
		return c.handleConfigVLAN(cmd, args)
	}
	return errInvalid, false
}

func (c *cliSession) handleExec(cmd string, args []string) (string, bool) {
	switch cmd {
	case "enable", "en":
		if c.srv.enableSecret == "" {
			c.mode = modeEnable
			return "", false
		}
		c.waitingEnablePw = true
		return "", false
	case "show", "sh":
		return c.handleShow(args), false
	}
	return errInvalid, false
}

func (c *cliSession) handleEnable(cmd string, args []string, line string) (string, bool) {
	switch cmd {
	case "configure", "conf":
		// "configure terminal" / "conf t"
		c.mode = modeConfig
		return "Enter configuration commands, one per line.\r\n", false
	case "show", "sh":
		return c.handleShow(args), false
	case "disable":
		c.mode = modeExec
		return "", false
	case "write", "copy":
		// "write memory" / "copy running-config startup-config":
		// configuration persistence is a no-op in the emulation.
		return "Copy completed.\r\n", false
	case "clear":
		if len(args) >= 2 && args[0] == "mac" {
			c.srv.sw.FDB().Sweep()
			for n := range c.srv.sw.Config().Ports {
				c.srv.sw.FDB().FlushPort(n)
			}
			return "", false
		}
		return errInvalid, false
	}
	_ = line
	return errInvalid, false
}

func (c *cliSession) handleConfig(cmd string, args []string) (string, bool) {
	switch cmd {
	case "hostname":
		if len(args) != 1 {
			return errIncomplete, false
		}
		c.srv.sw.SetHostname(args[0])
		return "", false
	case "vlan":
		if len(args) != 1 {
			return errIncomplete, false
		}
		id, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil || id < 1 || id > uint64(MaxVLAN) {
			return errInvalid, false
		}
		if err := c.srv.sw.DeclareVLAN(uint16(id), ""); err != nil {
			return errInvalid, false
		}
		c.curVLAN = uint16(id)
		c.mode = modeConfigVLAN
		return "", false
	case "no":
		if len(args) == 2 && args[0] == "vlan" {
			id, err := strconv.ParseUint(args[1], 10, 16)
			if err != nil {
				return errInvalid, false
			}
			c.srv.sw.RemoveVLAN(uint16(id))
			return "", false
		}
		return errInvalid, false
	case "interface", "int":
		if len(args) == 0 {
			return errIncomplete, false
		}
		// Accept "interface GigabitEthernet0/1" and
		// "interface GigabitEthernet 0/1".
		arg := strings.Join(args, "")
		port := c.srv.dialect.parsePort(arg)
		if port == 0 || port > c.srv.sw.NumPorts() {
			return errInvalid, false
		}
		c.curIf = port
		c.mode = modeConfigIf
		return "", false
	}
	return errInvalid, false
}

func (c *cliSession) handleConfigIf(cmd string, args []string) (string, bool) {
	join := strings.ToLower(strings.Join(args, " "))
	switch cmd {
	case "switchport":
		switch {
		case join == "mode access":
			cfg := c.srv.sw.Config()
			pvid := cfg.Ports[c.curIf].PVID
			if err := c.srv.sw.SetPortAccess(c.curIf, pvid); err != nil {
				return errInvalid, false
			}
			return "", false
		case join == "mode trunk":
			cfg := c.srv.sw.Config()
			pc := cfg.Ports[c.curIf]
			native := pc.PVID
			if pc.Mode == ModeAccess {
				native = DefaultVLAN
			}
			if err := c.srv.sw.SetPortTrunk(c.curIf, native, pc.AllowedList()); err != nil {
				return errInvalid, false
			}
			return "", false
		case strings.HasPrefix(join, "access vlan "):
			id, err := strconv.ParseUint(strings.TrimPrefix(join, "access vlan "), 10, 16)
			if err != nil {
				return errInvalid, false
			}
			if err := c.srv.sw.SetPortAccess(c.curIf, uint16(id)); err != nil {
				return errInvalid, false
			}
			return "", false
		case strings.HasPrefix(join, "trunk allowed vlan "):
			spec := strings.TrimPrefix(join, "trunk allowed vlan ")
			spec = strings.TrimPrefix(spec, "add ")
			vlans, err := parseVLANList(spec)
			if err != nil {
				return errInvalid, false
			}
			cfg := c.srv.sw.Config()
			native := cfg.Ports[c.curIf].PVID
			if cfg.Ports[c.curIf].Mode == ModeAccess {
				native = DefaultVLAN
			}
			if err := c.srv.sw.SetPortTrunk(c.curIf, native, vlans); err != nil {
				return errInvalid, false
			}
			return "", false
		case strings.HasPrefix(join, "trunk native vlan "):
			id, err := strconv.ParseUint(strings.TrimPrefix(join, "trunk native vlan "), 10, 16)
			if err != nil {
				return errInvalid, false
			}
			cfg := c.srv.sw.Config()
			if err := c.srv.sw.SetPortTrunk(c.curIf, uint16(id), cfg.Ports[c.curIf].AllowedList()); err != nil {
				return errInvalid, false
			}
			return "", false
		}
		return errInvalid, false
	case "shutdown":
		_ = c.srv.sw.SetPortShutdown(c.curIf, true)
		return "", false
	case "no":
		if join == "shutdown" {
			_ = c.srv.sw.SetPortShutdown(c.curIf, false)
			return "", false
		}
		return errInvalid, false
	case "description":
		return "", false // accepted and ignored
	}
	return errInvalid, false
}

func (c *cliSession) handleConfigVLAN(cmd string, args []string) (string, bool) {
	switch cmd {
	case "name":
		if len(args) != 1 {
			return errIncomplete, false
		}
		_ = c.srv.sw.DeclareVLAN(c.curVLAN, args[0])
		return "", false
	}
	return errInvalid, false
}

// parseVLANList parses "101,102,200-203" style lists.
func parseVLANList(spec string) ([]uint16, error) {
	var out []uint16
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			l, err1 := strconv.ParseUint(lo, 10, 16)
			h, err2 := strconv.ParseUint(hi, 10, 16)
			if err1 != nil || err2 != nil || l > h || h > uint64(MaxVLAN) {
				return nil, fmt.Errorf("legacy: bad VLAN range %q", part)
			}
			for v := l; v <= h; v++ {
				out = append(out, uint16(v))
			}
			continue
		}
		v, err := strconv.ParseUint(part, 10, 16)
		if err != nil || v < 1 || v > uint64(MaxVLAN) {
			return nil, fmt.Errorf("legacy: bad VLAN %q", part)
		}
		out = append(out, uint16(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("legacy: empty VLAN list")
	}
	return out, nil
}

// --- show commands ---------------------------------------------------

func (c *cliSession) handleShow(args []string) string {
	if len(args) == 0 {
		return errIncomplete
	}
	topic := strings.ToLower(args[0])
	rest := args[1:]
	switch topic {
	case "version":
		return c.showVersion()
	case "running-config", "run":
		return c.showRunning()
	case "vlan":
		return c.showVLANs()
	case "mac":
		// "show mac address-table"
		return c.showMACTable()
	case "interfaces", "int":
		if len(rest) > 0 && strings.ToLower(rest[0]) == "status" {
			return c.showIfStatus()
		}
		return c.showIfStatus()
	}
	return errInvalid
}

func (c *cliSession) showVersion() string {
	sw := c.srv.sw
	var sb strings.Builder
	if c.srv.dialect == DialectAristaish {
		fmt.Fprintf(&sb, "Arista %s\r\n", sw.Model())
		fmt.Fprintf(&sb, "Software image version: %s\r\n", c.srv.version)
		fmt.Fprintf(&sb, "Uptime: %s\r\n", sw.Uptime().Round(1e9))
	} else {
		fmt.Fprintf(&sb, "Cisco IOS Software, %s, Version %s\r\n", sw.Model(), c.srv.version)
		fmt.Fprintf(&sb, "%s uptime is %s\r\n", sw.Hostname(), sw.Uptime().Round(1e9))
	}
	fmt.Fprintf(&sb, "%d Gigabit Ethernet interfaces\r\n", sw.NumPorts())
	return sb.String()
}

func (c *cliSession) showRunning() string {
	sw := c.srv.sw
	cfg := sw.Config()
	var sb strings.Builder
	fmt.Fprintf(&sb, "hostname %s\r\n!\r\n", cfg.Hostname)
	vlanIDs := make([]int, 0, len(cfg.VLANs))
	for v := range cfg.VLANs {
		vlanIDs = append(vlanIDs, int(v))
	}
	sort.Ints(vlanIDs)
	for _, v := range vlanIDs {
		fmt.Fprintf(&sb, "vlan %d\r\n name %s\r\n!\r\n", v, cfg.VLANs[uint16(v)])
	}
	for _, n := range cfg.PortNumbers() {
		pc := cfg.Ports[n]
		fmt.Fprintf(&sb, "interface %s\r\n", c.srv.dialect.IfName(n))
		switch pc.Mode {
		case ModeAccess:
			fmt.Fprintf(&sb, " switchport mode access\r\n switchport access vlan %d\r\n", pc.PVID)
		case ModeTrunk:
			fmt.Fprintf(&sb, " switchport mode trunk\r\n")
			if al := pc.AllowedList(); al != nil {
				strs := make([]string, len(al))
				for i, v := range al {
					strs[i] = strconv.Itoa(int(v))
				}
				fmt.Fprintf(&sb, " switchport trunk allowed vlan %s\r\n", strings.Join(strs, ","))
			}
			fmt.Fprintf(&sb, " switchport trunk native vlan %d\r\n", pc.PVID)
		}
		if pc.Shutdown {
			fmt.Fprintf(&sb, " shutdown\r\n")
		}
		fmt.Fprintf(&sb, "!\r\n")
	}
	return sb.String()
}

func (c *cliSession) showVLANs() string {
	cfg := c.srv.sw.Config()
	var sb strings.Builder
	fmt.Fprintf(&sb, "VLAN Name                 Ports\r\n")
	vlanIDs := make([]int, 0, len(cfg.VLANs))
	for v := range cfg.VLANs {
		vlanIDs = append(vlanIDs, int(v))
	}
	sort.Ints(vlanIDs)
	for _, v := range vlanIDs {
		var members []string
		for _, n := range cfg.PortNumbers() {
			if pc := cfg.Ports[n]; pc.Mode == ModeAccess && pc.PVID == uint16(v) {
				members = append(members, c.srv.dialect.IfName(n))
			}
		}
		fmt.Fprintf(&sb, "%-4d %-20s %s\r\n", v, cfg.VLANs[uint16(v)], strings.Join(members, ", "))
	}
	return sb.String()
}

func (c *cliSession) showMACTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Vlan    Mac Address       Type        Port\r\n")
	for _, e := range c.srv.sw.FDB().Entries() {
		typ := "DYNAMIC"
		if e.Static {
			typ = "STATIC"
		}
		fmt.Fprintf(&sb, "%-7d %s %-11s %s\r\n", e.VLAN, e.MAC, typ, c.srv.dialect.IfName(e.Port))
	}
	return sb.String()
}

func (c *cliSession) showIfStatus() string {
	cfg := c.srv.sw.Config()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Port                 Status       Vlan  Mode\r\n")
	for _, n := range cfg.PortNumbers() {
		pc := cfg.Ports[n]
		status := "connected"
		if pc.Shutdown {
			status = "disabled"
		} else if !c.srv.sw.PortAttached(n) {
			status = "notconnect"
		}
		mode := pc.Mode.String()
		vlan := strconv.Itoa(int(pc.PVID))
		if pc.Mode == ModeTrunk {
			vlan = "trunk"
		}
		fmt.Fprintf(&sb, "%-20s %-12s %-5s %s\r\n", c.srv.dialect.IfName(n), status, vlan, mode)
	}
	return sb.String()
}
