// Command benchdiff turns `go test -bench` output into a regression
// tripwire. It parses benchmark result lines, optionally snapshots
// them as a JSON baseline, and renders a markdown delta table against
// a committed baseline — the bench-smoke CI job pipes its output here
// and pastes the table into the job summary.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | tee bench.txt
//	benchdiff -bench bench.txt -write BENCH_BASELINE.json   # snapshot
//	benchdiff -bench bench.txt -baseline BENCH_BASELINE.json -check
//
// -check makes benchdiff exit non-zero on the failure modes a smoke
// run must catch regardless of hardware: panics, FAILed packages,
// benchmarks that report zero iterations, or no benchmarks at all.
// Deltas themselves are informational by default (CI runners differ
// from the machine that wrote the baseline); -fail-over makes a
// slowdown beyond the threshold fatal too, for runs where baseline
// and current share hardware.
//
// -pair-check enforces the cache acceptance invariant WITHIN a single
// run, so it is hardware-independent: every `X/cached` benchmark with
// an `X/uncached` sibling must deliver at least (1 - pair-tolerance)
// of the sibling's throughput. The two-tier flow cache must never be
// a tax — not even on the adversarial thrash workload it used to lose
// badly on. Run it against a measured pass (-benchtime 20000x), not
// the 1x smoke rows, which are single-iteration noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics, averaged over -count runs.
type Result struct {
	Iterations uint64             `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value
	runs       int
}

// Baseline is the committed snapshot format.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]*Result `json:"benchmarks"`
}

// lowerIsBetter reports whether a metric improves downwards.
func lowerIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/op")
}

// parseBench parses `go test -bench` output. It returns the results
// plus the hard failure markers -check cares about.
func parseBench(r io.Reader) (results map[string]*Result, panics, fails []string, err error) {
	results = make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "panic:") {
			panics = append(panics, trimmed)
			continue
		}
		if strings.HasPrefix(trimmed, "--- FAIL") || strings.HasPrefix(trimmed, "FAIL") {
			fails = append(fails, trimmed)
			continue
		}
		if !strings.HasPrefix(trimmed, "Benchmark") {
			continue
		}
		fields := strings.Fields(trimmed)
		// Name iterations {value unit}...
		if len(fields) < 2 {
			continue
		}
		name := normalizeName(fields[0])
		iters, perr := strconv.ParseUint(fields[1], 10, 64)
		if perr != nil {
			continue // a Benchmark* line that is not a result row
		}
		res := results[name]
		if res == nil {
			res = &Result{Metrics: make(map[string]float64)}
			results[name] = res
		}
		res.runs++
		res.Iterations += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, verr := strconv.ParseFloat(fields[i], 64)
			if verr != nil {
				continue
			}
			res.Metrics[fields[i+1]] += v
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, nil, serr
	}
	// Average over the -count runs.
	for _, res := range results {
		if res.runs > 1 {
			res.Iterations /= uint64(res.runs)
			for k := range res.Metrics {
				res.Metrics[k] /= float64(res.runs)
			}
		}
	}
	return results, panics, fails, nil
}

// normalizeName strips the -GOMAXPROCS suffix so results compare
// across differently sized runners.
func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// delta returns the relative change current vs base, signed so that
// POSITIVE means regression for the given unit.
func delta(unit string, base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	d := (cur - base) / base
	if !lowerIsBetter(unit) {
		d = -d
	}
	return d
}

func main() {
	benchPath := flag.String("bench", "-", "bench output file ('-' = stdin)")
	baselinePath := flag.String("baseline", "", "baseline JSON to diff against")
	writePath := flag.String("write", "", "write the parsed results as a new baseline JSON to this path and exit")
	note := flag.String("note", "", "note stored in a written baseline")
	threshold := flag.Float64("threshold", 0.30, "relative slowdown that flags a benchmark in the table")
	check := flag.Bool("check", false, "exit non-zero on panics, FAILs, zero-iteration results, or an empty bench run")
	failOver := flag.Bool("fail-over", false, "with -baseline: also exit non-zero when any flagged metric regresses past the threshold")
	pairs := flag.Bool("pair-check", false, "exit non-zero unless every X/cached benchmark keeps at least (1 - pair-tolerance) of its X/uncached sibling's throughput")
	pairTol := flag.Float64("pair-tolerance", 0.15, "relative shortfall allowed by -pair-check before cached-vs-uncached fails")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	results, panics, fails, err := parseBench(in)
	if err != nil {
		fatal("parse: %v", err)
	}

	bad := 0
	if *check {
		for _, p := range panics {
			fmt.Printf("CHECK FAIL: %s\n", p)
			bad++
		}
		for _, f := range fails {
			fmt.Printf("CHECK FAIL: %s\n", f)
			bad++
		}
		for name, res := range results {
			if res.Iterations == 0 {
				fmt.Printf("CHECK FAIL: %s reported 0 iterations\n", name)
				bad++
			}
		}
		if len(results) == 0 {
			fmt.Println("CHECK FAIL: no benchmark results parsed")
			bad++
		}
	}

	if *pairs {
		bad += pairCheck(results, *pairTol)
	}

	if *writePath != "" {
		b := Baseline{Note: *note, Benchmarks: results}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*writePath, append(data, '\n'), 0o644); err != nil {
			fatal("write: %v", err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(results), *writePath)
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal("baseline: %v", err)
		}
		var base Baseline
		if err := json.Unmarshal(data, &base); err != nil {
			fatal("baseline: %v", err)
		}
		regressed := printDelta(&base, results, *threshold)
		if *failOver && regressed > 0 {
			fmt.Printf("benchdiff: %d metric(s) regressed past %.0f%%\n", regressed, *threshold*100)
			bad += regressed
		}
	} else if *writePath == "" {
		printTable(results)
	}

	if bad > 0 {
		os.Exit(1)
	}
}

// throughput reads a result's packets-per-second, deriving it from
// ns/op for benchmarks that do not report the pps metric directly.
func throughput(res *Result) float64 {
	if pps, ok := res.Metrics["pps"]; ok && pps > 0 {
		return pps
	}
	if ns, ok := res.Metrics["ns/op"]; ok && ns > 0 {
		return 1e9 / ns
	}
	return 0
}

// pairCheck walks every `<base>/cached` result whose `<base>/uncached`
// sibling appears in the same run and fails those where the cached
// throughput drops below (1 - tol) of the uncached one. Comparing
// same-run siblings makes the gate independent of the runner: both
// sides saw identical hardware, load and ruleset. Returns the number
// of failing pairs.
func pairCheck(results map[string]*Result, tol float64) int {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	checked, bad := 0, 0
	for _, name := range names {
		base, ok := strings.CutSuffix(name, "/cached")
		if !ok {
			continue
		}
		unc := results[base+"/uncached"]
		if unc == nil {
			continue
		}
		cp, up := throughput(results[name]), throughput(unc)
		if cp == 0 || up == 0 {
			fmt.Printf("PAIR FAIL: %s vs uncached: missing pps and ns/op metrics\n", name)
			bad++
			continue
		}
		checked++
		ratio := cp / up
		if ratio < 1-tol {
			fmt.Printf("PAIR FAIL: %s %s < %s uncached x %.2f (ratio %.3f): the cache is a net tax on this workload\n",
				name, fmtVal(cp), fmtVal(up), 1-tol, ratio)
			bad++
		} else {
			fmt.Printf("PAIR OK:   %s %s vs uncached %s (ratio %.2fx)\n", name, fmtVal(cp), fmtVal(up), ratio)
		}
	}
	if checked == 0 && bad == 0 {
		fmt.Println("PAIR FAIL: no cached/uncached benchmark pairs found in this run")
		bad++
	}
	return bad
}

// printDelta renders the markdown comparison table and returns how
// many metrics regressed past the threshold.
func printDelta(base *Baseline, cur map[string]*Result, threshold float64) int {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("| benchmark | metric | baseline | current | delta |")
	fmt.Println("|---|---|---:|---:|---:|")
	regressed := 0
	for _, name := range names {
		res := cur[name]
		bres := base.Benchmarks[name]
		units := make([]string, 0, len(res.Metrics))
		for u := range res.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			v := res.Metrics[u]
			if u != "ns/op" && u != "pps" {
				continue // keep the table to the headline metrics
			}
			if bres == nil {
				fmt.Printf("| %s | %s | — | %s | new |\n", name, u, fmtVal(v))
				continue
			}
			bv, ok := bres.Metrics[u]
			if !ok {
				fmt.Printf("| %s | %s | — | %s | new |\n", name, u, fmtVal(v))
				continue
			}
			d := delta(u, bv, v)
			marker := ""
			if d >= threshold {
				marker = " ⚠️"
				regressed++
			} else if d <= -threshold {
				marker = " 🚀"
			}
			fmt.Printf("| %s | %s | %s | %s | %+.1f%%%s |\n", name, u, fmtVal(bv), fmtVal(v), d*100, marker)
		}
	}
	for name := range base.Benchmarks {
		if _, ok := cur[name]; !ok {
			fmt.Printf("| %s | | | | missing from this run |\n", name)
		}
	}
	return regressed
}

// printTable renders the parsed results alone (no baseline).
func printTable(results map[string]*Result) {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("| benchmark | metric | value |")
	fmt.Println("|---|---|---:|")
	for _, name := range names {
		units := make([]string, 0, len(results[name].Metrics))
		for u := range results[name].Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			if u != "ns/op" && u != "pps" {
				continue
			}
			fmt.Printf("| %s | %s | %s |\n", name, u, fmtVal(results[name].Metrics[u]))
		}
	}
}

// fmtVal renders a metric value compactly.
func fmtVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
