package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, typechecked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

var cgoOff sync.Once

// sourceImporter returns a types importer that typechecks imports from
// source, resolving module paths through the go command. Cgo is
// disabled process-wide so cgo-optional std packages (net, os/user)
// come up in their pure-Go configuration and stay typecheckable.
func sourceImporter(fset *token.FileSet) types.ImporterFrom {
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// CheckPackage parses and typechecks one package from its files.
// Imports — the module's own packages and the standard library alike —
// are typechecked from source through imp.
func CheckPackage(fset *token.FileSet, imp types.ImporterFrom, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %w (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Dir: dirOf(filenames), Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

func dirOf(filenames []string) string {
	if len(filenames) == 0 {
		return ""
	}
	return filepath.Dir(filenames[0])
}

// CheckFixture typechecks one testdata fixture package under an
// arbitrary import path — the analysistest entry point. Fixture
// imports (standard library or this module's packages) resolve from
// source like any other load.
func CheckFixture(fset *token.FileSet, path string, filenames []string) (*Package, error) {
	return CheckPackage(fset, sourceImporter(fset), path, filenames)
}

// ModuleDir resolves the root directory of the main module governing
// dir, so diagnostic positions can be reported module-relative — the
// same path on every machine and in every checkout, which is what lets
// baseline entries and CI annotations match across environments.
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go list -m: %v\n%s", err, errb.String())
	}
	return strings.TrimSpace(out.String()), nil
}

// Load enumerates the packages matching patterns (relative to dir, the
// module root) with the go command and typechecks each. Test files are
// not loaded: the invariants gate production code, and _test.go files
// are where wall clocks and allocations are legitimate.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := sourceImporter(fset)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			filenames[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := CheckPackage(fset, imp, lp.ImportPath, filenames)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Analyze loads the packages matching patterns and runs every analyzer
// — per-package passes over each package, module passes once over the
// whole load — returning the combined, position-sorted diagnostics
// with filenames normalized to module-relative slash paths.
func Analyze(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.RunModule != nil {
			mp := &ModulePass{}
			for _, pkg := range pkgs {
				mp.Passes = append(mp.Passes, NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, report))
			}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("%s: %v", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, report)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	if modDir, err := ModuleDir(dir); err == nil && modDir != "" {
		for i := range diags {
			diags[i].Pos.Filename = RelativePath(modDir, diags[i].Pos.Filename)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RelativePath rewrites an absolute position filename to a
// module-relative slash path. Files outside root (should not happen
// for module loads) keep their absolute name.
func RelativePath(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
