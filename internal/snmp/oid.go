// Package snmp implements the SNMPv2c subset the HARMLESS manager uses
// to discover and monitor the legacy switch: GET, GETNEXT, SET and
// RESPONSE PDUs with real BER (basic encoding rules) wire encoding,
// carried over UDP. An Agent serves a MIB view assembled from
// registered scalars; a Client issues requests with retry and
// request-id matching, plus a GETNEXT-based Walk.
//
// Everything is built on the standard library; no external ASN.1
// helpers are used (encoding/asn1 cannot express SNMP's
// application-class tags).
package snmp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OID is an object identifier, e.g. 1.3.6.1.2.1.1.5.0.
type OID []uint32

// ParseOID parses dotted notation with an optional leading dot.
func ParseOID(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	parts := strings.Split(s, ".")
	o := make(OID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID component %q", p)
		}
		o = append(o, uint32(v))
	}
	if len(o) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	if o[0] > 2 || (o[0] < 2 && o[1] >= 40) {
		return nil, fmt.Errorf("snmp: invalid OID root %d.%d", o[0], o[1])
	}
	return o, nil
}

// MustOID is ParseOID that panics; for literals in tables and tests.
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String renders dotted notation with a leading dot.
func (o OID) String() string {
	var sb strings.Builder
	for _, c := range o {
		sb.WriteByte('.')
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// Cmp compares two OIDs in lexicographic MIB order.
func (o OID) Cmp(other OID) int {
	n := len(o)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// HasPrefix reports whether o begins with prefix.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	for i, c := range prefix {
		if o[i] != c {
			return false
		}
	}
	return true
}

// Append returns a new OID with the extra components appended.
func (o OID) Append(components ...uint32) OID {
	out := make(OID, 0, len(o)+len(components))
	out = append(out, o...)
	return append(out, components...)
}

// Clone returns a copy.
func (o OID) Clone() OID {
	out := make(OID, len(o))
	copy(out, o)
	return out
}

// SortOIDs sorts a slice of OIDs in MIB order.
func SortOIDs(oids []OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i].Cmp(oids[j]) < 0 })
}
