package apps

import (
	"strings"
	"sync"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// ParentalControl implements demo use case (c): "selectively deny
// access to specific users to certain web pages on-the-fly". Two
// mechanisms compose:
//
//  1. DNS interception: every DNS query goes to the controller. A
//     query from a restricted user for a blocked domain is answered
//     with NXDOMAIN by the controller itself; anything else is
//     released toward the uplink.
//  2. IP fallback: when a blocked (user, site-IP) pair is configured
//     (covering users with hardcoded DNS), a drop flow is installed.
//
// Policy changes (Block/Unblock) take effect immediately: DNS decisions
// are per-query, and IP rules are added/deleted on the fly.
type ParentalControl struct {
	controller.BaseApp
	// Table is the filter table this app owns.
	Table uint8
	// NextTable receives non-DNS traffic.
	NextTable uint8
	// UplinkPort is where the resolver/Internet is reachable.
	UplinkPort uint32

	mu        sync.Mutex
	domains   map[pkt.IPv4]map[string]bool // user -> blocked domain suffixes
	ipBlocks  map[pkt.IPv4]map[pkt.IPv4]bool
	limits    map[pkt.IPv4]uint32 // user -> pkt/s rate limit
	meterIDs  map[pkt.IPv4]uint32
	nextMeter uint32
	switches  []*controller.SwitchHandle
	nxCount   uint64
}

// Name implements controller.App.
func (pc *ParentalControl) Name() string { return "parentalcontrol" }

// BlockDomain denies user access to domain (suffix match, so
// "example.net" also blocks "www.example.net").
func (pc *ParentalControl) BlockDomain(user pkt.IPv4, domain string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.domains == nil {
		pc.domains = make(map[pkt.IPv4]map[string]bool)
	}
	if pc.domains[user] == nil {
		pc.domains[user] = make(map[string]bool)
	}
	pc.domains[user][strings.ToLower(domain)] = true
}

// UnblockDomain lifts a domain restriction.
func (pc *ParentalControl) UnblockDomain(user pkt.IPv4, domain string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	delete(pc.domains[user], strings.ToLower(domain))
}

// BlockIP denies user access to a literal site address, installing
// drop flows on all connected switches.
func (pc *ParentalControl) BlockIP(user, site pkt.IPv4) {
	pc.mu.Lock()
	if pc.ipBlocks == nil {
		pc.ipBlocks = make(map[pkt.IPv4]map[pkt.IPv4]bool)
	}
	if pc.ipBlocks[user] == nil {
		pc.ipBlocks[user] = make(map[pkt.IPv4]bool)
	}
	pc.ipBlocks[user][site] = true
	switches := append([]*controller.SwitchHandle{}, pc.switches...)
	pc.mu.Unlock()
	for _, sw := range switches {
		pc.installIPBlock(sw, user, site)
	}
}

// UnblockIP lifts an address restriction.
func (pc *ParentalControl) UnblockIP(user, site pkt.IPv4) {
	pc.mu.Lock()
	delete(pc.ipBlocks[user], site)
	switches := append([]*controller.SwitchHandle{}, pc.switches...)
	pc.mu.Unlock()
	for _, sw := range switches {
		match := openflow.Match{}
		match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(user).WithIPv4Dst(site)
		_ = sw.FlowMod(&openflow.FlowMod{
			TableID: pc.Table, Command: openflow.FlowDeleteStrict, Priority: 250,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: match,
		})
	}
}

// RateLimitUser throttles all of a user's IPv4 traffic to the given
// packet rate using an OpenFlow meter (0 removes the limit). This is
// the "fine-tune on the fly" extension: bandwidth policy per user
// without touching the legacy switch.
func (pc *ParentalControl) RateLimitUser(user pkt.IPv4, pktPerSec uint32) {
	pc.mu.Lock()
	if pc.limits == nil {
		pc.limits = make(map[pkt.IPv4]uint32)
		pc.meterIDs = make(map[pkt.IPv4]uint32)
	}
	if pktPerSec == 0 {
		delete(pc.limits, user)
	} else {
		pc.limits[user] = pktPerSec
		if _, ok := pc.meterIDs[user]; !ok {
			pc.nextMeter++
			pc.meterIDs[user] = pc.nextMeter
		}
	}
	meterID := pc.meterIDs[user]
	switches := append([]*controller.SwitchHandle{}, pc.switches...)
	pc.mu.Unlock()

	for _, sw := range switches {
		if pktPerSec == 0 {
			pc.removeRateLimit(sw, user, meterID)
		} else {
			pc.installRateLimit(sw, user, meterID, pktPerSec)
		}
	}
}

func (pc *ParentalControl) installRateLimit(sw *controller.SwitchHandle, user pkt.IPv4, meterID, rate uint32) {
	// Add-or-modify the meter (add fails silently if it exists; the
	// modify below converges the rate either way).
	_ = sw.Send(&openflow.MeterMod{
		Command: openflow.MeterAdd, Flags: openflow.MeterFlagPktps, MeterID: meterID,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: rate, BurstSize: rate}},
	})
	_ = sw.Send(&openflow.MeterMod{
		Command: openflow.MeterModify, Flags: openflow.MeterFlagPktps, MeterID: meterID,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: rate, BurstSize: rate}},
	})
	match := openflow.Match{}
	match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(user)
	_ = sw.InstallFlow(pc.Table, 200, match,
		&openflow.InstrMeter{MeterID: meterID},
		&openflow.InstrGotoTable{TableID: pc.NextTable},
	)
}

func (pc *ParentalControl) removeRateLimit(sw *controller.SwitchHandle, user pkt.IPv4, meterID uint32) {
	match := openflow.Match{}
	match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(user)
	_ = sw.FlowMod(&openflow.FlowMod{
		TableID: pc.Table, Command: openflow.FlowDeleteStrict, Priority: 200,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: match,
	})
	_ = sw.Send(&openflow.MeterMod{Command: openflow.MeterDelete, MeterID: meterID})
}

// NXDomainCount returns how many queries have been denied.
func (pc *ParentalControl) NXDomainCount() uint64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.nxCount
}

// isBlocked checks the domain policy (suffix match).
func (pc *ParentalControl) isBlocked(user pkt.IPv4, qname string) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	qname = strings.ToLower(qname)
	for suffix := range pc.domains[user] {
		if qname == suffix || strings.HasSuffix(qname, "."+suffix) {
			return true
		}
	}
	return false
}

// SwitchConnected installs the DNS intercept and pass-through.
func (pc *ParentalControl) SwitchConnected(sw *controller.SwitchHandle) {
	pc.mu.Lock()
	pc.switches = append(pc.switches, sw)
	type ipPair struct{ user, site pkt.IPv4 }
	var pairs []ipPair
	for user, sites := range pc.ipBlocks {
		for site := range sites {
			pairs = append(pairs, ipPair{user, site})
		}
	}
	type limit struct {
		user    pkt.IPv4
		meterID uint32
		rate    uint32
	}
	var limits []limit
	for user, rate := range pc.limits {
		limits = append(limits, limit{user, pc.meterIDs[user], rate})
	}
	pc.mu.Unlock()

	// DNS queries (UDP dst 53) to the controller.
	dns := openflow.Match{}
	dns.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPDst(53)
	_ = sw.InstallFlow(pc.Table, 300, dns,
		&openflow.InstrApplyActions{Actions: []openflow.Action{
			&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff},
		}})

	// Everything else continues.
	_ = sw.InstallFlow(pc.Table, 0, openflow.Match{}, &openflow.InstrGotoTable{TableID: pc.NextTable})

	for _, p := range pairs {
		pc.installIPBlock(sw, p.user, p.site)
	}
	for _, l := range limits {
		pc.installRateLimit(sw, l.user, l.meterID, l.rate)
	}
}

func (pc *ParentalControl) installIPBlock(sw *controller.SwitchHandle, user, site pkt.IPv4) {
	match := openflow.Match{}
	match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(user).WithIPv4Dst(site)
	_ = sw.InstallFlow(pc.Table, 250, match) // no instructions = drop
}

// PacketIn handles intercepted DNS queries.
func (pc *ParentalControl) PacketIn(sw *controller.SwitchHandle, pi *openflow.PacketIn) {
	if pi.TableID != pc.Table {
		return
	}
	inPort, ok := pi.InPort()
	if !ok {
		return
	}
	p := pkt.DecodeEthernet(pi.Data)
	dns := p.DNS()
	udp := p.UDP()
	ip := p.IPv4()
	if dns == nil || udp == nil || ip == nil || dns.QR || len(dns.Questions) == 0 {
		return
	}
	qname := dns.Questions[0].Name
	if pc.isBlocked(ip.Src, qname) {
		pc.mu.Lock()
		pc.nxCount++
		pc.mu.Unlock()
		reply := pc.buildNXDomain(p, dns)
		if reply != nil {
			_ = sw.PacketOut(openflow.PortController, reply,
				&openflow.ActionOutput{Port: inPort, MaxLen: 0xffff})
		}
		return
	}
	// Allowed: release toward the resolver.
	_ = sw.PacketOut(inPort, pi.Data,
		&openflow.ActionOutput{Port: pc.UplinkPort, MaxLen: 0xffff})
}

// buildNXDomain crafts the spoofed denial answering the query in p.
func (pc *ParentalControl) buildNXDomain(p *pkt.Packet, q *pkt.DNS) []byte {
	eth := p.Ethernet()
	ip := p.IPv4()
	udp := p.UDP()
	resp := &pkt.DNS{
		ID: q.ID, QR: true, AA: true, RA: true, RD: q.RD,
		Rcode:     pkt.DNSRcodeNXDomain,
		Questions: q.Questions,
	}
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: eth.Dst, Dst: eth.Src, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip.Dst, Dst: ip.Src},
		&pkt.UDP{SrcPort: udp.DstPort, DstPort: udp.SrcPort},
		resp,
	)
	if err != nil {
		return nil
	}
	return frame
}
