package pkt

import (
	"testing"
)

func TestExtractKeyUDP(t *testing.T) {
	frame := buildUDPFrame(t, []byte("payload"))
	var k Key
	if err := ExtractKey(frame, 7, &k); err != nil {
		t.Fatal(err)
	}
	if k.InPort != 7 {
		t.Errorf("InPort = %d", k.InPort)
	}
	if k.EthSrc != testSrcMAC || k.EthDst != testDstMAC {
		t.Errorf("MACs: %v > %v", k.EthSrc, k.EthDst)
	}
	if k.EthType != EtherTypeIPv4 || k.HasVLAN {
		t.Errorf("EthType=%#x HasVLAN=%v", k.EthType, k.HasVLAN)
	}
	if !k.HasIPv4 || k.IPSrc != testSrcIP || k.IPDst != testDstIP || k.IPProto != IPProtoUDP {
		t.Errorf("IP fields: %+v", k)
	}
	if !k.HasL4 || k.L4Src != 1234 || k.L4Dst != 5678 {
		t.Errorf("L4 fields: %+v", k)
	}
}

func TestExtractKeyVLAN(t *testing.T) {
	base := buildUDPFrame(t, []byte("p"))
	tagged, err := PushVLAN(base, EtherTypeDot1Q, 101)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := ExtractKey(tagged, 1, &k); err != nil {
		t.Fatal(err)
	}
	if !k.HasVLAN || k.VLANID != 101 {
		t.Errorf("VLAN: %+v", k)
	}
	// EtherType must be the inner type, not 0x8100.
	if k.EthType != EtherTypeIPv4 {
		t.Errorf("EthType = %#x", k.EthType)
	}
	if !k.HasIPv4 || !k.HasL4 {
		t.Error("inner layers must still be extracted through the tag")
	}
}

func TestExtractKeyQinQUsesOuterTag(t *testing.T) {
	base := buildUDPFrame(t, []byte("p"))
	inner, _ := PushVLAN(base, EtherTypeDot1Q, 101)
	outer, _ := PushVLAN(inner, EtherTypeQinQ, 300)
	var k Key
	if err := ExtractKey(outer, 1, &k); err != nil {
		t.Fatal(err)
	}
	if k.VLANID != 300 {
		t.Errorf("outer VID = %d, want 300", k.VLANID)
	}
	if !k.HasIPv4 {
		t.Error("must parse through both tags")
	}
}

func TestExtractKeyARP(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: BroadcastMAC, EtherType: EtherTypeARP},
		&ARP{Op: ARPRequest, SenderHW: testSrcMAC, SenderIP: testSrcIP, TargetIP: testDstIP},
	)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := ExtractKey(frame, 2, &k); err != nil {
		t.Fatal(err)
	}
	if !k.HasARP || k.ARPOp != ARPRequest || k.ARPSPA != testSrcIP || k.ARPTPA != testDstIP {
		t.Errorf("ARP key: %+v", k)
	}
	if k.HasIPv4 || k.HasL4 {
		t.Error("ARP frame must not set IP/L4 fields")
	}
}

func TestExtractKeyICMP(t *testing.T) {
	icmp := &ICMPv4{Type: ICMPv4EchoRequest}
	icmp.SetEcho(1, 1)
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoICMP, Src: testSrcIP, Dst: testDstIP},
		icmp,
	)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := ExtractKey(frame, 1, &k); err != nil {
		t.Fatal(err)
	}
	if !k.HasICMP || k.ICMPType != ICMPv4EchoRequest || k.ICMPCode != 0 {
		t.Errorf("ICMP key: %+v", k)
	}
}

func TestExtractKeyIPv6(t *testing.T) {
	pl := Payload([]byte("hi"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv6},
		&IPv6Header{NextHeader: IPProtoUDP, HopLimit: 64, Src: IPv6{1}, Dst: IPv6{2}},
		&UDP{SrcPort: 53, DstPort: 53},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := ExtractKey(frame, 1, &k); err != nil {
		t.Fatal(err)
	}
	if !k.HasIPv6 || k.IPProto != IPProtoUDP || !k.HasL4 || k.L4Src != 53 {
		t.Errorf("IPv6 key: %+v", k)
	}
}

func TestExtractKeyTruncatedInner(t *testing.T) {
	frame := buildUDPFrame(t, []byte("p"))
	// Cut into the IP header: Ethernet decodes, IP does not.
	var k Key
	if err := ExtractKey(frame[:EthernetHeaderLen+8], 1, &k); err != nil {
		t.Fatal(err)
	}
	if k.HasIPv4 || k.HasL4 {
		t.Error("truncated IP must leave IP fields unset")
	}
	if k.EthType != EtherTypeIPv4 {
		t.Errorf("EthType = %#x", k.EthType)
	}
	// Too short for Ethernet: error.
	if err := ExtractKey(frame[:10], 1, &k); err == nil {
		t.Error("expected error for sub-Ethernet frame")
	}
}

func TestExtractKeyFragmentNoL4(t *testing.T) {
	pl := Payload([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP, FragOffset: 64},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	if err := ExtractKey(frame, 1, &k); err != nil {
		t.Fatal(err)
	}
	if !k.HasIPv4 {
		t.Error("IP fields must be set for fragments")
	}
	if k.HasL4 {
		t.Error("non-first fragment must not extract L4 ports")
	}
}

func TestKeyIsComparable(t *testing.T) {
	frame := buildUDPFrame(t, []byte("p"))
	var k1, k2 Key
	if err := ExtractKey(frame, 3, &k1); err != nil {
		t.Fatal(err)
	}
	if err := ExtractKey(frame, 3, &k2); err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical frames must produce equal keys")
	}
	m := map[Key]int{k1: 1}
	if m[k2] != 1 {
		t.Error("key must work as map key")
	}
}

func BenchmarkExtractKey(b *testing.B) {
	frame := buildUDPFrame(b, make([]byte, 1000))
	var k Key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ExtractKey(frame, 1, &k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFull(b *testing.B) {
	frame := buildUDPFrame(b, make([]byte, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := DecodeEthernet(frame)
		if p.Err() != nil {
			b.Fatal(p.Err())
		}
	}
}

func BenchmarkParserDecodeLayers(b *testing.B) {
	frame := buildUDPFrame(b, make([]byte, 1000))
	parser := NewParser()
	decoded := make([]LayerType, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parser.DecodeLayers(frame, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}
