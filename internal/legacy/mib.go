package legacy

import (
	"fmt"
	"strings"

	"github.com/harmless-sdn/harmless/internal/snmp"
)

// SNMP object identifiers exposed by the emulated switch. The system
// and interfaces groups follow RFC 1213/2863; the writable per-port
// VLAN objects live under a private enterprise arc, standing in for
// the vendor VLAN MIBs real devices expose (e.g. CISCO-VLAN-MEMBERSHIP-
// MIB), which is how SNMP-driven managers like the paper's configure
// port VLANs.
var (
	OIDSysDescr    = snmp.MustOID("1.3.6.1.2.1.1.1.0")
	OIDSysObjectID = snmp.MustOID("1.3.6.1.2.1.1.2.0")
	OIDSysUpTime   = snmp.MustOID("1.3.6.1.2.1.1.3.0")
	OIDSysName     = snmp.MustOID("1.3.6.1.2.1.1.5.0")
	OIDIfNumber    = snmp.MustOID("1.3.6.1.2.1.2.1.0")
	OIDIfTable     = snmp.MustOID("1.3.6.1.2.1.2.2.1")

	// Enterprise arc for the emulated vendor.
	OIDEnterprise = snmp.MustOID("1.3.6.1.4.1.55555")
	// harmlessPortMode.<ifIndex>: 1=access, 2=trunk (read-write).
	OIDPortModeTable = OIDEnterprise.Append(1, 1)
	// harmlessPortPVID.<ifIndex>: access VLAN / trunk native (read-write).
	OIDPortPVIDTable = OIDEnterprise.Append(1, 2)
	// harmlessPortTrunkAllowed.<ifIndex>: comma list, e.g. "101,102"
	// (read-write; empty string = all VLANs).
	OIDPortAllowedTable = OIDEnterprise.Append(1, 3)
)

// ifTable column numbers used below.
const (
	ifIndexCol     = 1
	ifDescrCol     = 2
	ifOperStatus   = 8
	ifInOctetsCol  = 10
	ifInUcastCol   = 11
	ifOutOctetsCol = 16
	ifOutUcastCol  = 17
)

// BindMIB registers the switch's management objects into mib. The
// dialect only affects cosmetic strings (interface names, sysDescr).
func BindMIB(sw *Switch, mib *snmp.MIB, dialect Dialect) {
	mib.RegisterReadOnly(OIDSysDescr, func() snmp.Value {
		return snmp.OctetString(fmt.Sprintf("%s (%s emulation)", sw.Model(), dialect))
	})
	mib.RegisterReadOnly(OIDSysObjectID, func() snmp.Value {
		return snmp.ObjectIdentifier(OIDEnterprise.Append(uint32(dialect) + 1))
	})
	mib.RegisterReadOnly(OIDSysUpTime, func() snmp.Value {
		return snmp.TimeTicks(sw.Uptime().Milliseconds() / 10)
	})
	mib.Register(OIDSysName,
		func() snmp.Value { return snmp.OctetString(sw.Hostname()) },
		func(v snmp.Value) error {
			s, ok := v.(snmp.OctetString)
			if !ok {
				return &snmp.SetError{Status: snmp.ErrWrongType, Reason: "sysName wants a string"}
			}
			sw.SetHostname(string(s))
			return nil
		})
	mib.RegisterReadOnly(OIDIfNumber, func() snmp.Value {
		return snmp.Integer(sw.NumPorts())
	})

	for i := 1; i <= sw.NumPorts(); i++ {
		port := i
		idx := uint32(i)
		mib.RegisterReadOnly(OIDIfTable.Append(ifIndexCol, idx), func() snmp.Value {
			return snmp.Integer(port)
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifDescrCol, idx), func() snmp.Value {
			return snmp.OctetString(dialect.IfName(port))
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifOperStatus, idx), func() snmp.Value {
			cfg := sw.Config()
			if pc := cfg.Ports[port]; pc != nil && !pc.Shutdown && sw.PortAttached(port) {
				return snmp.Integer(1) // up
			}
			return snmp.Integer(2) // down
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifInOctetsCol, idx), func() snmp.Value {
			return snmp.Counter32(uint32(sw.PortCounters(port).RxBytes.Load()))
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifInUcastCol, idx), func() snmp.Value {
			return snmp.Counter32(uint32(sw.PortCounters(port).RxPackets.Load()))
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifOutOctetsCol, idx), func() snmp.Value {
			return snmp.Counter32(uint32(sw.PortCounters(port).TxBytes.Load()))
		})
		mib.RegisterReadOnly(OIDIfTable.Append(ifOutUcastCol, idx), func() snmp.Value {
			return snmp.Counter32(uint32(sw.PortCounters(port).TxPackets.Load()))
		})

		mib.Register(OIDPortModeTable.Append(idx),
			func() snmp.Value {
				if sw.Config().Ports[port].Mode == ModeTrunk {
					return snmp.Integer(2)
				}
				return snmp.Integer(1)
			},
			func(v snmp.Value) error {
				iv, ok := v.(snmp.Integer)
				if !ok {
					return &snmp.SetError{Status: snmp.ErrWrongType, Reason: "mode wants integer"}
				}
				cfg := sw.Config()
				pc := cfg.Ports[port]
				switch iv {
				case 1:
					return sw.SetPortAccess(port, pc.PVID)
				case 2:
					return sw.SetPortTrunk(port, pc.PVID, pc.AllowedList())
				}
				return &snmp.SetError{Status: snmp.ErrBadValue, Reason: "mode must be 1 or 2"}
			})
		mib.Register(OIDPortPVIDTable.Append(idx),
			func() snmp.Value { return snmp.Integer(sw.Config().Ports[port].PVID) },
			func(v snmp.Value) error {
				iv, ok := v.(snmp.Integer)
				if !ok {
					return &snmp.SetError{Status: snmp.ErrWrongType, Reason: "pvid wants integer"}
				}
				if iv < 1 || iv > snmp.Integer(MaxVLAN) {
					return &snmp.SetError{Status: snmp.ErrBadValue, Reason: "pvid out of range"}
				}
				cfg := sw.Config()
				pc := cfg.Ports[port]
				if pc.Mode == ModeTrunk {
					return sw.SetPortTrunk(port, uint16(iv), pc.AllowedList())
				}
				return sw.SetPortAccess(port, uint16(iv))
			})
		mib.Register(OIDPortAllowedTable.Append(idx),
			func() snmp.Value {
				al := sw.Config().Ports[port].AllowedList()
				parts := make([]string, len(al))
				for i, v := range al {
					parts[i] = fmt.Sprintf("%d", v)
				}
				return snmp.OctetString(strings.Join(parts, ","))
			},
			func(v snmp.Value) error {
				s, ok := v.(snmp.OctetString)
				if !ok {
					return &snmp.SetError{Status: snmp.ErrWrongType, Reason: "allowed wants string"}
				}
				cfg := sw.Config()
				pc := cfg.Ports[port]
				if len(s) == 0 {
					return sw.SetPortTrunk(port, pc.PVID, nil)
				}
				vlans, err := parseVLANList(string(s))
				if err != nil {
					return &snmp.SetError{Status: snmp.ErrBadValue, Reason: err.Error()}
				}
				return sw.SetPortTrunk(port, pc.PVID, vlans)
			})
	}
}
