// Package frameown is the frameown fixture: batch frame slices that
// escape the dispatch call must be diagnosed; copies, locals and
// hatched hand-offs must not.
package frameown

import (
	"bytes"

	"github.com/harmless-sdn/harmless/internal/dataplane"
)

type sniffer struct {
	last    []byte
	history [][]byte
	samples map[int][]byte
}

var lastSeen []byte

var captureBuf [][]byte

func fieldStore(s *sniffer, b *dataplane.Batch) {
	s.last = b.Frames[0] // want "assignment to struct field last"
	for _, f := range b.Frames {
		s.history = append(s.history, f) // want "assignment to struct field history"
	}
	s.samples[0] = b.Frames[0] // want "assignment to element of struct field samples"
}

func globalStore(b *dataplane.Batch) {
	lastSeen = b.Frames[0]                       // want "assignment to package-level variable"
	captureBuf = append(captureBuf, b.Frames[0]) // want "assignment to package-level variable"
}

func viaLocal(s *sniffer, b *dataplane.Batch) {
	f := b.Frames[0] // a local alias is fine on its own...
	hdr := f[:14]
	s.last = hdr // want "assignment to struct field last"
}

func channelSend(b *dataplane.Batch, out chan []byte) {
	out <- b.Frames[0] // want "channel send"
	f := b.Frames[1][2:]
	out <- f // want "channel send"
}

func copies(s *sniffer, b *dataplane.Batch, out chan []byte) {
	// Ellipsis append and bytes.Clone copy the payload out of the
	// producer's buffer: the stored slice owns its memory.
	s.last = append([]byte(nil), b.Frames[0]...)
	s.last = bytes.Clone(b.Frames[0])
	out <- bytes.Clone(b.Frames[1])
	n := len(b.Frames[0]) // scalar reads never retain
	_ = n
}

func hatched(s *sniffer, b *dataplane.Batch) {
	// The switch owns this batch until Reset; documented hand-off.
	s.last = b.Frames[0] //harmless:allow-retain frames are pooled per switch and stable until Reset
}

func notABatch(s *sniffer) {
	// A Frames field on some other type is not tracked.
	v := struct{ Frames [][]byte }{}
	s.last = v.Frames[0]
}

func hatchedBare(s *sniffer, b *dataplane.Batch) {
	s.last = b.Frames[0] //harmless:allow-retain // want "needs a reason"
}

func staleHatch(s *sniffer, b *dataplane.Batch) {
	//harmless:allow-retain nothing on the next line retains a frame // want "unused //harmless:allow-retain directive"
	n := len(b.Frames[0])
	_ = n
	_ = s
}
