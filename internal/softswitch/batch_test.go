package softswitch_test

// Tests for the batch-oriented dataplane API: ReceiveBatch vs Receive
// equivalence (every observable counter must be bit-identical for the
// same frames sent either way), the iterative patch-port dispatch
// (constant stack depth across arbitrarily long SS chains), and the
// ring egress backend.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// exactnessSwitch builds a two-port switch with a two-table ruleset
// exercising goto-table, distractor entries, and a final output — the
// same shape as the cache benches — plus a sink on port 2.
func exactnessSwitch(t *testing.T, opts ...softswitch.Option) *softswitch.Switch {
	t.Helper()
	sw := softswitch.New("exact", 0xe, opts...)
	for _, port := range []uint32{1, 2} {
		l := netem.NewLink(netem.LinkConfig{})
		t.Cleanup(l.Close)
		sw.AttachNetPort(port, "p", l.A())
		l.B().SetReceiver(func([]byte) {})
	}
	add := func(table uint8, priority uint16, m openflow.Match, instrs ...openflow.Instruction) {
		t.Helper()
		if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: table, Command: openflow.FlowAdd, Priority: priority,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: m, Instructions: instrs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	output2 := &openflow.InstrApplyActions{Actions: []openflow.Action{
		&openflow.ActionOutput{Port: 2, MaxLen: 0xffff},
	}}
	for i := 0; i < 16; i++ {
		m := openflow.Match{}
		m.WithInPort(1).WithEthType(pkt.EtherTypeIPv4).
			WithIPv4Dst(pkt.IPv4{10, 9, 0, byte(i)})
		add(0, uint16(1000-i), m, output2)
	}
	mIn := openflow.Match{}
	mIn.WithInPort(1)
	add(0, 10, mIn, &openflow.InstrGotoTable{TableID: 1})
	add(1, 1, openflow.Match{}, output2)
	return sw
}

// counterSnapshot flattens every observable counter of the switch.
func counterSnapshot(sw *softswitch.Switch) map[string]uint64 {
	snap := map[string]uint64{
		"drops":    sw.Drops(),
		"pktins":   sw.PacketIns(),
		"cachelen": uint64(sw.CacheLen()),
	}
	for _, no := range sw.PortNumbers() {
		c := sw.PortCounters(no)
		snap[fmt.Sprintf("port%d.rxp", no)] = c.RxPackets.Load()
		snap[fmt.Sprintf("port%d.rxb", no)] = c.RxBytes.Load()
		snap[fmt.Sprintf("port%d.txp", no)] = c.TxPackets.Load()
		snap[fmt.Sprintf("port%d.txb", no)] = c.TxBytes.Load()
	}
	for _, ts := range sw.TableStats() {
		snap[fmt.Sprintf("table%d.lookups", ts.TableID)] = ts.LookupCount
		snap[fmt.Sprintf("table%d.matched", ts.TableID)] = ts.MatchedCount
	}
	for ti, fs := range sw.FlowStats(openflow.TableAll) {
		snap[fmt.Sprintf("flow%d.pkts", ti)] = fs.PacketCount
		snap[fmt.Sprintf("flow%d.bytes", ti)] = fs.ByteCount
	}
	if cs := sw.CacheStats(); cs != nil {
		snap["cache.hits"] = cs.Hits.Load()
		snap["cache.misses"] = cs.Misses.Load()
		snap["cache.inserts"] = cs.Inserts.Load()
		snap["cache.inval"] = cs.Invalidations.Load()
		snap["cache.evict"] = cs.Evictions.Load()
	}
	return snap
}

// TestBatchCounterExactness drives the same deterministic traffic —
// including duplicate flows inside one batch and a mid-run flow-mod
// that invalidates cached megaflows — through one switch frame by
// frame and through a twin in batches, and requires every observable
// counter to be identical. Batching must change no semantics.
func TestBatchCounterExactness(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []softswitch.Option
		// Under capacity-eviction pressure the batch probe — taken at
		// batch start — may legitimately hit an entry that a same-batch
		// insert later displaces, where a per-frame run would miss.
		// Forwarding counters stay identical either way; only the cache
		// hit/miss split may shift, with the total conserved.
		evictions bool
	}{
		{"cached", nil, false},
		{"uncached", []softswitch.Option{softswitch.WithMicroflowCache(false)}, false},
		{"tiny-cache", []softswitch.Option{softswitch.WithMicroflowCacheSize(4)}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			single := exactnessSwitch(t, tc.opts...)
			batched := exactnessSwitch(t, tc.opts...)

			// 24 flows over a 16-frame batch size: duplicates within a
			// batch, misses, and (for tiny-cache) evictions.
			genA := fabric.NewUDPGenerator(96, 24, 11)
			genB := fabric.NewUDPGenerator(96, 24, 11)
			const total, batchSize = 240, 16

			modOnce := func(sw *softswitch.Switch) {
				// A flow-mod between rounds bumps table revisions so
				// both switches see identical invalidation work.
				m := openflow.Match{}
				m.WithInPort(1).WithEthType(pkt.EtherTypeIPv4).
					WithIPv4Dst(pkt.IPv4{10, 9, 0, 99})
				if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
					TableID: 0, Command: openflow.FlowAdd, Priority: 2000,
					BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
					Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
						Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
					}},
				}); err != nil {
					t.Fatal(err)
				}
			}

			batch := make([][]byte, 0, batchSize)
			for sent := 0; sent < total; sent += batchSize {
				if sent == total/2 {
					modOnce(single)
					modOnce(batched)
				}
				batch = batch[:0]
				for i := 0; i < batchSize; i++ {
					fA := genA.CopyNext()
					single.Receive(1, fA)
					batch = append(batch, genB.CopyNext())
				}
				batched.ReceiveBatch(1, batch)
			}

			got, want := counterSnapshot(batched), counterSnapshot(single)
			for k, w := range want {
				if tc.evictions && (strings.HasPrefix(k, "cache.") || k == "cachelen") {
					continue
				}
				if got[k] != w {
					t.Errorf("%s: batched=%d single=%d", k, got[k], w)
				}
			}
			if len(got) != len(want) {
				t.Errorf("snapshot key mismatch: %d vs %d", len(got), len(want))
			}
			if tc.evictions {
				// The hit/miss split may shift under eviction pressure but
				// every frame is still classified exactly once.
				if gt, wt := got["cache.hits"]+got["cache.misses"], want["cache.hits"]+want["cache.misses"]; gt != wt {
					t.Errorf("hit+miss total: batched=%d single=%d", gt, wt)
				}
			}
			// Sanity: the run exercised the cache when enabled.
			if cs := single.CacheStats(); cs != nil && cs.Hits.Load() == 0 {
				t.Error("traffic never hit the cache — test is vacuous")
			}
		})
	}
}

// depthBackend records the goroutine stack depth observed at egress.
type depthBackend struct {
	frames [][]byte
	depths []int
}

func (d *depthBackend) Transmit(frame []byte) { d.TransmitBatch([][]byte{frame}) }

func (d *depthBackend) TransmitBatch(frames [][]byte) {
	var pcs [256]uintptr
	depth := runtime.Callers(0, pcs[:])
	for _, f := range frames {
		d.frames = append(d.frames, f)
		d.depths = append(d.depths, depth)
	}
}

// buildPatchChain wires hops switches in a line via patch ports
// (port 2 of sw[i] patches into port 1 of sw[i+1]), each forwarding
// in-port 1 to port 2, with a depth-recording sink on the last hop.
func buildPatchChain(t *testing.T, hops int) (*softswitch.Switch, *depthBackend) {
	t.Helper()
	sws := make([]*softswitch.Switch, hops)
	for i := range sws {
		sws[i] = softswitch.New(fmt.Sprintf("hop%d", i), uint64(0x100+i))
	}
	for i := 0; i+1 < hops; i++ {
		softswitch.ConnectPatch(sws[i], 2, sws[i+1], 1)
	}
	sink := &depthBackend{}
	sws[hops-1].AttachPort(2, "sink", sink)
	for _, sw := range sws {
		m := openflow.Match{}
		m.WithInPort(1)
		if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: 0, Command: openflow.FlowAdd, Priority: 10,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sws[0], sink
}

// TestPatchChainIterative is the regression test for patch-port
// recursion: delivery across an S4-style chain must run at CONSTANT
// stack depth regardless of chain length, because the dispatch loop
// forwards grouped batches off a worklist instead of calling the peer
// switch per frame.
func TestPatchChainIterative(t *testing.T) {
	gen := fabric.NewUDPGenerator(64, 4, 3)
	depthAt := func(hops, batchSize int) int {
		first, sink := buildPatchChain(t, hops)
		batch := make([][]byte, batchSize)
		for i := range batch {
			batch[i] = gen.CopyNext()
		}
		if batchSize == 1 {
			first.Receive(1, batch[0])
		} else {
			first.ReceiveBatch(1, batch)
		}
		if len(sink.frames) != batchSize {
			t.Fatalf("hops=%d: %d of %d frames crossed the chain", hops, len(sink.frames), batchSize)
		}
		for _, d := range sink.depths[1:] {
			if d != sink.depths[0] {
				t.Fatalf("hops=%d: egress depth varies across frames: %v", hops, sink.depths)
			}
		}
		return sink.depths[0]
	}

	if d2, d32 := depthAt(2, 8), depthAt(32, 8); d2 != d32 {
		t.Errorf("batched dispatch recurses: egress stack depth %d at 2 hops vs %d at 32 hops", d2, d32)
	}
	if d2, d32 := depthAt(2, 1), depthAt(32, 1); d2 != d32 {
		t.Errorf("per-frame dispatch recurses: egress stack depth %d at 2 hops vs %d at 32 hops", d2, d32)
	}
}

// TestPatchChainOrderAndCounters checks that a batch crossing a chain
// arrives complete, in order, and with per-hop port counters equal to
// the injected totals.
func TestPatchChainOrderAndCounters(t *testing.T) {
	const hops, n = 5, 33
	first, sink := buildPatchChain(t, hops)
	gen := fabric.NewUDPGenerator(80, n, 9)
	batch := make([][]byte, n)
	want := make([][]byte, n)
	for i := range batch {
		batch[i] = gen.CopyNext()
		want[i] = append([]byte{}, batch[i]...)
	}
	first.ReceiveBatch(1, batch)
	if len(sink.frames) != n {
		t.Fatalf("delivered %d of %d", len(sink.frames), n)
	}
	for i := range want {
		if string(sink.frames[i]) != string(want[i]) {
			t.Fatalf("frame %d reordered or corrupted", i)
		}
	}
	if got := first.PortCounters(2).TxPackets.Load(); got != n {
		t.Errorf("hop0 patch tx = %d, want %d", got, n)
	}
}

// TestReceiveMixedBatch dispatches one dataplane.Batch carrying frames
// from two ingress ports plus a malformed frame, and checks per-frame
// verdicts, per-port rx counters, and delivery.
func TestReceiveMixedBatch(t *testing.T) {
	sw := softswitch.New("mixed", 0x33)
	for _, port := range []uint32{1, 2} {
		l := netem.NewLink(netem.LinkConfig{})
		t.Cleanup(l.Close)
		sw.AttachNetPort(port, "in", l.A())
	}
	out := softswitch.NewRingBackend(64)
	sw.AttachPort(3, "out", out)
	for _, in := range []uint32{1, 2} {
		m := openflow.Match{}
		m.WithInPort(in)
		if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: 0, Command: openflow.FlowAdd, Priority: 10,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
			Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: 3, MaxLen: 0xffff}},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	gen := fabric.NewUDPGenerator(64, 2, 21)
	var b dataplane.Batch
	b.Append(gen.CopyNext(), 1) // slow path (cold cache)
	// Different flow, same port: the ruleset only consults in_port, so
	// the megaflow recorded by the first frame already covers it.
	b.Append(gen.CopyNext(), 1)
	b.Append([]byte{0xde, 0xad}, 1) // malformed: dropped
	b.Append(gen.CopyNext(), 2)     // port 2 run (distinct mask-class key)
	sw.ReceiveMixedBatch(&b)
	want := []dataplane.Verdict{
		dataplane.VerdictSlowPath, dataplane.VerdictCacheHit,
		dataplane.VerdictDropped, dataplane.VerdictSlowPath,
	}
	for i, w := range want {
		if b.Meta[i].Verdict != w {
			t.Errorf("frame %d verdict = %v, want %v", i, b.Meta[i].Verdict, w)
		}
	}
	if got := out.Ring().Len(); got != 3 {
		t.Errorf("delivered %d frames, want 3", got)
	}
	if rx1, rx2 := sw.PortCounters(1).RxPackets.Load(), sw.PortCounters(2).RxPackets.Load(); rx1 != 3 || rx2 != 1 {
		t.Errorf("rx split = %d/%d, want 3/1", rx1, rx2)
	}
	// A second pass of the same flows must come back as cache hits.
	b.Reset()
	b.Append(gen.CopyNext(), 1)
	b.Append(gen.CopyNext(), 1)
	sw.ReceiveMixedBatch(&b)
	for i := 0; i < 2; i++ {
		if b.Meta[i].Verdict != dataplane.VerdictCacheHit {
			t.Errorf("warm frame %d verdict = %v, want cache-hit", i, b.Meta[i].Verdict)
		}
	}
}

// forwardingBackend is a custom (non-patch) backend implementing the
// BatchForwarder capability: flushTx must route it through the
// iterative worklist exactly like a built-in patch port.
type forwardingBackend struct {
	peer     *softswitch.Switch
	peerPort uint32
}

func (fb *forwardingBackend) ForwardTarget() (*softswitch.Switch, uint32) {
	return fb.peer, fb.peerPort
}
func (fb *forwardingBackend) Transmit(frame []byte)     { fb.peer.Receive(fb.peerPort, frame) }
func (fb *forwardingBackend) TransmitBatch(fs [][]byte) { fb.peer.ReceiveBatch(fb.peerPort, fs) }

// TestCustomBatchForwarder chains two switches through a user-supplied
// BatchForwarder backend and checks the worklist keeps delivery
// iterative (same egress stack depth as a direct, chainless switch of
// the same shape would not show — we compare two chain lengths).
func TestCustomBatchForwarder(t *testing.T) {
	mkchain := func(hops int) (*softswitch.Switch, *depthBackend) {
		t.Helper()
		sws := make([]*softswitch.Switch, hops)
		for i := range sws {
			sws[i] = softswitch.New(fmt.Sprintf("fw%d", i), uint64(0x200+i))
		}
		for i := 0; i+1 < hops; i++ {
			sws[i].AttachPort(2, "fwd", &forwardingBackend{peer: sws[i+1], peerPort: 1})
		}
		sink := &depthBackend{}
		sws[hops-1].AttachPort(2, "sink", sink)
		for _, sw := range sws {
			m := openflow.Match{}
			m.WithInPort(1)
			if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
				TableID: 0, Command: openflow.FlowAdd, Priority: 10,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
					Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
				}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return sws[0], sink
	}
	gen := fabric.NewUDPGenerator(64, 2, 17)
	depthAt := func(hops int) int {
		first, sink := mkchain(hops)
		first.ReceiveBatch(1, [][]byte{gen.CopyNext(), gen.CopyNext()})
		if len(sink.frames) != 2 {
			t.Fatalf("hops=%d: %d of 2 frames crossed", hops, len(sink.frames))
		}
		return sink.depths[0]
	}
	if d2, d16 := depthAt(2), depthAt(16); d2 != d16 {
		t.Errorf("custom forwarder recurses: depth %d at 2 hops vs %d at 16", d2, d16)
	}
}

// TestRingBackend drives a switch with a ring egress: frames come out
// in order, and overflow tail-drops are counted.
func TestRingBackend(t *testing.T) {
	sw := softswitch.New("ring", 0xf1)
	in := netem.NewLink(netem.LinkConfig{})
	defer in.Close()
	sw.AttachNetPort(1, "in", in.A())
	rb := softswitch.NewRingBackend(8)
	sw.AttachPort(2, "out", rb)
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	gen := fabric.NewUDPGenerator(64, 4, 5)
	batch := make([][]byte, 6)
	for i := range batch {
		batch[i] = gen.CopyNext()
	}
	sw.ReceiveBatch(1, batch)
	out := rb.Ring().Drain(nil, 0)
	if len(out) != 6 {
		t.Fatalf("ring drained %d of 6", len(out))
	}
	// Overflow: capacity 8, push 12 without draining.
	big := make([][]byte, 12)
	for i := range big {
		big[i] = gen.CopyNext()
	}
	sw.ReceiveBatch(1, big)
	if got := rb.Ring().Len(); got != 8 {
		t.Errorf("ring len = %d, want full at 8", got)
	}
	if rb.Dropped.Load() != 4 {
		t.Errorf("dropped = %d, want 4", rb.Dropped.Load())
	}
}
