// Package fabric emulates the end systems and physical topology of the
// demo: hosts with a small network stack (ARP, ICMPv4 echo, UDP, a
// minimal TCP for request/response exchanges, and a DNS client), frame
// taps for path verification, and traffic generators for the
// performance experiments (traffic.go: fixed-size and IMIX frame
// pools, uniform, Zipf-skewed, and adversarial cache-thrash flow
// mixes).
//
// Hosts are deliberately simple — they generate exactly the frames the
// demo's physical hosts would, which is all the HARMLESS claims need.
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// ErrTimeout is returned by blocking host operations.
var ErrTimeout = errors.New("fabric: timed out")

// UDPMessage is one received UDP datagram.
type UDPMessage struct {
	SrcIP   pkt.IPv4
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Host is an emulated end system attached to one netem port.
type Host struct {
	Name string
	MAC  pkt.MAC
	IP   pkt.IPv4

	port  *netem.Port
	clock netem.Clock

	mu          sync.Mutex
	arpTable    map[pkt.IPv4]pkt.MAC
	arpWait     map[pkt.IPv4][]chan pkt.MAC
	udpQueue    chan UDPMessage
	udpHandlers map[uint16]func(UDPMessage) []byte // port -> responder
	pingWait    map[uint16]chan struct{}           // echo id -> reply signal
	pingSeq     uint16
	tcp         *tcpLite

	rxFrames, txFrames int
}

// NewHost creates a host and binds it to the port.
func NewHost(name string, mac pkt.MAC, ip pkt.IPv4, port *netem.Port) *Host {
	h := &Host{
		Name: name, MAC: mac, IP: ip, port: port,
		clock:       netem.RealClock{},
		arpTable:    make(map[pkt.IPv4]pkt.MAC),
		arpWait:     make(map[pkt.IPv4][]chan pkt.MAC),
		udpQueue:    make(chan UDPMessage, 1024),
		udpHandlers: make(map[uint16]func(UDPMessage) []byte),
		pingWait:    make(map[uint16]chan struct{}),
	}
	h.tcp = newTCPLite(h)
	port.SetReceiver(h.receive)
	port.SetBatchReceiver(h.receiveBatch)
	return h
}

// SetClock runs the host's timeouts (ARP, ping, UDP, TCP, DNS waits)
// on c — virtual time when c is a netem.Scheduler. nil is ignored;
// the default is the wall clock. Call before issuing blocking
// operations.
func (h *Host) SetClock(c netem.Clock) *Host {
	if c != nil {
		h.clock = c
	}
	return h
}

// after returns a one-shot timer for d on the host's clock. Callers
// must Stop it.
func (h *Host) after(d time.Duration) *netem.Timer {
	return netem.NewTimer(h.clock, d)
}

// Stats returns (received, transmitted) frame counts.
func (h *Host) Stats() (rx, tx int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rxFrames, h.txFrames
}

// send transmits a frame.
func (h *Host) send(frame []byte) {
	h.mu.Lock()
	h.txFrames++
	h.mu.Unlock()
	_ = h.port.Send(frame)
}

// receiveBatch is the host's vectored frame input: the stack itself is
// per-frame, so a batch is simply unrolled here — what batching buys
// the host is one port wakeup per vector, not a vectored stack.
func (h *Host) receiveBatch(frames [][]byte) {
	for _, f := range frames {
		h.receive(f)
	}
}

// receive is the host's frame input.
func (h *Host) receive(frame []byte) {
	h.mu.Lock()
	h.rxFrames++
	h.mu.Unlock()
	p := pkt.DecodeEthernet(frame)
	eth := p.Ethernet()
	if eth == nil {
		return
	}
	// Accept frames for us, broadcast, or multicast.
	if eth.Dst != h.MAC && !eth.Dst.IsMulticast() {
		return
	}
	if arp := p.ARP(); arp != nil {
		h.handleARP(arp)
		return
	}
	ip := p.IPv4()
	if ip == nil || ip.Dst != h.IP {
		return
	}
	switch {
	case p.ICMPv4() != nil:
		h.handleICMP(p, ip)
	case p.UDP() != nil:
		h.handleUDP(p, ip)
	case p.TCP() != nil:
		h.tcp.handle(p, ip, eth)
	}
}

// --- ARP --------------------------------------------------------------

func (h *Host) handleARP(arp *pkt.ARP) {
	// Learn the sender either way.
	h.learnARP(arp.SenderIP, arp.SenderHW)
	if arp.Op == pkt.ARPRequest && arp.TargetIP == h.IP {
		reply, err := pkt.Serialize(
			&pkt.Ethernet{Src: h.MAC, Dst: arp.SenderHW, EtherType: pkt.EtherTypeARP},
			&pkt.ARP{Op: pkt.ARPReply, SenderHW: h.MAC, SenderIP: h.IP,
				TargetHW: arp.SenderHW, TargetIP: arp.SenderIP},
		)
		if err == nil {
			h.send(reply)
		}
	}
}

func (h *Host) learnARP(ip pkt.IPv4, mac pkt.MAC) {
	if ip.IsZero() || !mac.IsUnicast() {
		return
	}
	h.mu.Lock()
	h.arpTable[ip] = mac
	waiters := h.arpWait[ip]
	delete(h.arpWait, ip)
	h.mu.Unlock()
	for _, w := range waiters {
		w <- mac
	}
}

// AddStaticARP seeds the ARP table (e.g. for a virtual service IP).
func (h *Host) AddStaticARP(ip pkt.IPv4, mac pkt.MAC) {
	h.mu.Lock()
	h.arpTable[ip] = mac
	h.mu.Unlock()
}

// Resolve returns the MAC for ip, ARPing if needed.
func (h *Host) Resolve(ip pkt.IPv4, timeout time.Duration) (pkt.MAC, error) {
	h.mu.Lock()
	if mac, ok := h.arpTable[ip]; ok {
		h.mu.Unlock()
		return mac, nil
	}
	ch := make(chan pkt.MAC, 1)
	h.arpWait[ip] = append(h.arpWait[ip], ch)
	h.mu.Unlock()

	req, err := pkt.Serialize(
		&pkt.Ethernet{Src: h.MAC, Dst: pkt.BroadcastMAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: h.MAC, SenderIP: h.IP, TargetIP: ip},
	)
	if err != nil {
		return pkt.MAC{}, err
	}
	h.send(req)
	t := h.after(timeout)
	defer t.Stop()
	select {
	case mac := <-ch:
		return mac, nil
	case <-t.C:
		return pkt.MAC{}, fmt.Errorf("fabric: ARP for %s: %w", ip, ErrTimeout)
	}
}

// --- ICMP -------------------------------------------------------------

func (h *Host) handleICMP(p *pkt.Packet, ip *pkt.IPv4Header) {
	icmp := p.ICMPv4()
	switch icmp.Type {
	case pkt.ICMPv4EchoRequest:
		reply := &pkt.ICMPv4{Type: pkt.ICMPv4EchoReply, Rest: icmp.Rest}
		payload := pkt.Payload(icmp.LayerPayload())
		frame, err := pkt.Serialize(
			&pkt.Ethernet{Src: h.MAC, Dst: p.Ethernet().Src, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoICMP, Src: h.IP, Dst: ip.Src},
			reply, &payload,
		)
		if err == nil {
			h.send(frame)
		}
	case pkt.ICMPv4EchoReply:
		h.mu.Lock()
		ch := h.pingWait[icmp.ID()]
		h.mu.Unlock()
		if ch != nil {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
}

// Ping sends one echo request and waits for the reply.
func (h *Host) Ping(dst pkt.IPv4, timeout time.Duration) error {
	mac, err := h.Resolve(dst, timeout)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.pingSeq++
	id := h.pingSeq
	ch := make(chan struct{}, 1)
	h.pingWait[id] = ch
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.pingWait, id)
		h.mu.Unlock()
	}()

	icmp := &pkt.ICMPv4{Type: pkt.ICMPv4EchoRequest}
	icmp.SetEcho(id, 1)
	payload := pkt.Payload("harmless-ping")
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: h.MAC, Dst: mac, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoICMP, Src: h.IP, Dst: dst},
		icmp, &payload,
	)
	if err != nil {
		return err
	}
	h.send(frame)
	t := h.after(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return nil
	case <-t.C:
		return fmt.Errorf("fabric: ping %s: %w", dst, ErrTimeout)
	}
}

// --- UDP --------------------------------------------------------------

func (h *Host) handleUDP(p *pkt.Packet, ip *pkt.IPv4Header) {
	udp := p.UDP()
	msg := UDPMessage{
		SrcIP: ip.Src, SrcPort: udp.SrcPort, DstPort: udp.DstPort,
		Payload: append([]byte{}, udp.LayerPayload()...),
	}
	h.mu.Lock()
	handler := h.udpHandlers[udp.DstPort]
	h.mu.Unlock()
	if handler != nil {
		if resp := handler(msg); resp != nil {
			_ = h.sendUDPTo(p.Ethernet().Src, ip.Src, udp.DstPort, udp.SrcPort, resp)
		}
		return
	}
	select {
	case h.udpQueue <- msg:
	default: // queue full: drop, like a real socket buffer
	}
}

// HandleUDP registers a responder for a UDP port; returning non-nil
// sends the reply back to the source.
func (h *Host) HandleUDP(port uint16, fn func(UDPMessage) []byte) {
	h.mu.Lock()
	h.udpHandlers[port] = fn
	h.mu.Unlock()
}

// SendUDP resolves the destination and transmits one datagram.
func (h *Host) SendUDP(dst pkt.IPv4, sport, dport uint16, payload []byte) error {
	mac, err := h.Resolve(dst, time.Second)
	if err != nil {
		return err
	}
	return h.sendUDPTo(mac, dst, sport, dport, payload)
}

func (h *Host) sendUDPTo(dstMAC pkt.MAC, dst pkt.IPv4, sport, dport uint16, payload []byte) error {
	pl := pkt.Payload(payload)
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: h.MAC, Dst: dstMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: h.IP, Dst: dst},
		&pkt.UDP{SrcPort: sport, DstPort: dport},
		&pl,
	)
	if err != nil {
		return err
	}
	h.send(frame)
	return nil
}

// RecvUDP waits for the next queued datagram (for ports without a
// registered handler).
func (h *Host) RecvUDP(timeout time.Duration) (UDPMessage, error) {
	t := h.after(timeout)
	defer t.Stop()
	select {
	case m := <-h.udpQueue:
		return m, nil
	case <-t.C:
		return UDPMessage{}, fmt.Errorf("fabric: recv udp: %w", ErrTimeout)
	}
}

// --- DNS --------------------------------------------------------------

// QueryDNS sends an A query to server and waits for the response.
func (h *Host) QueryDNS(server pkt.IPv4, name string, timeout time.Duration) (*pkt.DNS, error) {
	mac, err := h.Resolve(server, timeout)
	if err != nil {
		return nil, err
	}
	sport := uint16(20000 + rand.Intn(20000))
	id := uint16(rand.Intn(65536))
	q := &pkt.DNS{ID: id, RD: true,
		Questions: []pkt.DNSQuestion{{Name: name, Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: h.MAC, Dst: mac, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: h.IP, Dst: server},
		&pkt.UDP{SrcPort: sport, DstPort: 53},
		q,
	)
	if err != nil {
		return nil, err
	}
	h.send(frame)
	deadline := h.clock.Now().Add(timeout)
	for {
		remain := deadline.Sub(h.clock.Now())
		if remain <= 0 {
			return nil, fmt.Errorf("fabric: DNS query %q: %w", name, ErrTimeout)
		}
		msg, err := h.RecvUDP(remain)
		if err != nil {
			return nil, fmt.Errorf("fabric: DNS query %q: %w", name, ErrTimeout)
		}
		if msg.SrcPort != 53 || msg.DstPort != sport {
			continue
		}
		var resp pkt.DNS
		if err := resp.DecodeFromBytes(msg.Payload); err != nil {
			continue
		}
		if resp.ID != id || !resp.QR {
			continue
		}
		return &resp, nil
	}
}

// ServeDNS makes the host answer A queries from the given records
// (name -> address); unknown names get NXDOMAIN.
func (h *Host) ServeDNS(records map[string]pkt.IPv4) {
	h.HandleUDP(53, func(m UDPMessage) []byte {
		var q pkt.DNS
		if err := q.DecodeFromBytes(m.Payload); err != nil || q.QR || len(q.Questions) == 0 {
			return nil
		}
		resp := &pkt.DNS{ID: q.ID, QR: true, AA: true, RA: true, RD: q.RD, Questions: q.Questions}
		if addr, ok := records[q.Questions[0].Name]; ok {
			resp.Answers = []pkt.DNSAnswer{{
				Name: q.Questions[0].Name, Type: pkt.DNSTypeA, Class: pkt.DNSClassIN,
				TTL: 60, A: addr,
			}}
		} else {
			resp.Rcode = pkt.DNSRcodeNXDomain
		}
		out, err := pkt.Serialize(resp)
		if err != nil {
			return nil
		}
		return out
	})
}

// SendRaw transmits a pre-built frame from the host's NIC, bypassing
// the stack — used by experiment harnesses to emulate many clients
// behind one physical port.
func (h *Host) SendRaw(frame []byte) { h.send(frame) }

// SendRawBatch transmits a vector of pre-built frames in one port
// call. Ownership of each frame transfers; the vector is borrowed and
// reusable after the call (dataplane ownership rules).
func (h *Host) SendRawBatch(frames [][]byte) {
	h.mu.Lock()
	h.txFrames += len(frames)
	h.mu.Unlock()
	_ = h.port.SendBatch(frames)
}
