package softswitch

import (
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// Microflow cache: the OVS-style exact-match fast path in front of the
// full pipeline walk. The first packet of a flow traverses the tables
// normally while a recorder captures the resulting "megaflow": the
// flat sequence of datapath operations the walk performed (meter
// checks, apply-actions lists, the final ordered action set) plus the
// table entries to credit for counters and idle timeouts. Subsequent
// packets with an identical header key replay that program directly,
// skipping key re-classification against every table.
//
// Correctness rests on revision validation, not on synchronous
// invalidation: each megaflow records the revision (Table.Version) of
// every table it consulted — read *before* the lookup, so a racing
// flow-mod can only make the recording stale, never silently valid —
// and the group-table revision when the program executes a group.
// A hit first revalidates all recorded revisions; any mismatch
// discards the entry and takes the slow path, so a flow-mod, expiry,
// or group-mod is visible to the very next packet.
//
// Per-packet state (meters, group bucket selection, TTL checks,
// packet-in delivery) is deliberately kept out of the cached decision:
// the program stores the *operations*, which are re-executed per
// packet, so meters still shed load, SELECT groups still hash, and a
// cached TTL-decrement still drops expiring packets.

const (
	// microflowShards is the number of independently locked cache
	// shards; a power of two so shard selection is a mask.
	microflowShards = 32

	// DefaultMicroflowCacheSize is the default total capacity of the
	// microflow cache in megaflow entries.
	DefaultMicroflowCacheSize = 1 << 15
)

// tableDep is one table the recorded walk consulted, with the
// revision it had when the decision was made (validated on every hit).
type tableDep struct {
	table *flowtable.Table
	rev   uint64
}

// opKind discriminates the replayable datapath operations.
type opKind uint8

const (
	opCredit opKind = iota // account the table/entry match
	opMeter                // run the meter
	opApply                // execute an action list
)

// microOp is one replayable datapath operation. Credits are recorded
// in-stream at the position the walk matched the entry, so a replay
// that stops early (meter drop, TTL expiry) credits exactly the
// tables the equivalent walk would have consulted, with the frame
// size the walk would have seen at that point.
type microOp struct {
	kind    opKind
	meterID uint32           // opMeter
	table   *flowtable.Table // opCredit
	acts    []openflow.Action
	tableID uint8
	entry   *flowtable.Entry // opCredit: entry to credit; opApply: packet-in context (nil for the action set)
}

// microflow is one cached megaflow: the dependency set to revalidate
// and the operation program to replay. It doubles as the recorder the
// pipeline walk fills in.
type microflow struct {
	deps     []tableDep
	ops      []microOp
	groups   *flowtable.GroupTable // non-nil when the program executes a group
	groupRev uint64

	// outPort is the first concrete egress port the recorded program
	// outputs to (0 = none/reserved-only) — the telemetry plane's
	// egressInterface, resolved once at record time so cache hits
	// never re-scan the program.
	outPort uint32

	// tel caches the flow's telemetry record so a cache hit accounts
	// telemetry with a pointer chase instead of a map lookup. Lazily
	// resolved; atomic because inline (non-pool) datapaths may race
	// the first touch.
	tel atomic.Pointer[telemetry.Record]

	// uncacheable marks recorder state that must not be installed: the
	// walk ended in a table miss (a later flow-add must see the key
	// again) or in a per-packet drop mid-walk (the rest of the program
	// was never observed).
	uncacheable bool
}

// valid reports whether every recorded revision still matches the live
// tables (and group table), i.e. replaying cannot disagree with a walk.
func (mf *microflow) valid() bool {
	for i := range mf.deps {
		if mf.deps[i].table.Version() != mf.deps[i].rev {
			return false
		}
	}
	if mf.groups != nil && mf.groups.Version() != mf.groupRev {
		return false
	}
	return true
}

// resolveOutPort scans the recorded program for the first OUTPUT to a
// concrete datapath port and remembers it as the flow's egress
// interface for telemetry. Reserved ports (controller, flood, ...)
// stay 0: the telemetry record then reports "no single egress".
func (mf *microflow) resolveOutPort() {
	for i := range mf.ops {
		for _, a := range mf.ops[i].acts {
			if out, ok := a.(*openflow.ActionOutput); ok && out.Port < openflow.PortMax {
				mf.outPort = out.Port
				return
			}
		}
	}
}

// telRecord returns the flow's telemetry record, resolving and caching
// it on first touch. A cached pointer minted by a different table
// (SetTelemetry swapped the plane out mid-flight) is re-resolved, so
// a stale record is never indexed into the wrong table's shards.
func (mf *microflow) telRecord(t *telemetry.Table, key *pkt.Key) *telemetry.Record {
	if rec := mf.tel.Load(); t.Owns(rec) {
		return rec
	}
	rec := t.Lookup(key)
	mf.tel.Store(rec)
	return rec
}

// usesGroups reports whether any recorded action executes a group.
// Group contents are resolved live at replay time (applyGroup looks
// the group up per packet), so the revision dependency this feeds is
// defense-in-depth rather than load-bearing: it additionally forces a
// fresh walk after any group-mod, at the cost of re-recording the
// affected megaflows.
func (mf *microflow) usesGroups() bool {
	for i := range mf.ops {
		for _, a := range mf.ops[i].acts {
			if _, ok := a.(*openflow.ActionGroup); ok {
				return true
			}
		}
	}
	return false
}

// cacheShard is one independently locked slice of the cache.
type cacheShard struct {
	mu    sync.RWMutex
	flows map[pkt.Key]*microflow
}

// microflowCache is the sharded exact-match cache.
type microflowCache struct {
	shards [microflowShards]cacheShard
	cap    int // per-shard entry cap
	stats  stats.CacheCounters
}

// newMicroflowCache sizes a cache for totalCap megaflows.
func newMicroflowCache(totalCap int) *microflowCache {
	perShard := totalCap / microflowShards
	if perShard < 1 {
		perShard = 1
	}
	c := &microflowCache{cap: perShard}
	for i := range c.shards {
		c.shards[i].flows = make(map[pkt.Key]*microflow)
	}
	return c
}

func (c *microflowCache) shardFor(k *pkt.Key) *cacheShard {
	return &c.shards[k.Hash()&(microflowShards-1)]
}

// lookup returns a still-valid megaflow for the key, or nil. Stale
// entries are removed on the way out; hit/miss/invalidation counters
// are maintained here.
//
//harmless:hotpath
func (c *microflowCache) lookup(k *pkt.Key) *microflow {
	sh := c.shardFor(k)
	sh.mu.RLock()
	mf := sh.flows[*k]
	sh.mu.RUnlock()
	if mf == nil {
		c.stats.Misses.Inc()
		return nil
	}
	if !mf.valid() {
		sh.mu.Lock()
		// Only remove the exact entry we saw: a racing walk may have
		// installed a fresher replacement already.
		if sh.flows[*k] == mf {
			delete(sh.flows, *k)
		}
		sh.mu.Unlock()
		c.stats.Invalidations.Inc()
		c.stats.Misses.Inc()
		return nil
	}
	c.stats.Hits.Inc()
	return mf
}

// probeBatch looks up every key of a batch in one pass grouped by
// shard: frames are first chained per shard through heads/next (an
// intrusive per-shard index list), then each shard's read lock is
// taken ONCE and all of its keys probed under it — the per-batch
// amortization of the per-frame lock in lookup. out[i] receives a
// still-valid megaflow or nil; skip[i] frames are left nil.
//
// Only HITS are counted here. Frames left nil fall back to the
// per-frame lookup on the slow path, which performs the exact
// miss/invalidation accounting and stale-entry removal — and can
// legitimately hit an entry that an earlier frame of the same batch
// just installed, exactly as a sequence of Receive calls would.
//
//harmless:hotpath
func (c *microflowCache) probeBatch(keys []pkt.Key, skip []bool, out []*microflow, heads *[microflowShards]int32, next []int32) {
	for i := range heads {
		heads[i] = -1
	}
	for i := len(keys) - 1; i >= 0; i-- {
		out[i] = nil
		if skip[i] {
			continue
		}
		sh := keys[i].Hash() & (microflowShards - 1)
		next[i] = heads[sh]
		heads[sh] = int32(i)
	}
	for si := range c.shards {
		i := heads[si]
		if i < 0 {
			continue
		}
		sh := &c.shards[si]
		sh.mu.RLock()
		for ; i >= 0; i = next[i] {
			out[i] = sh.flows[keys[i]]
		}
		sh.mu.RUnlock()
	}
	var hits uint64
	for i := range out {
		if out[i] == nil {
			continue
		}
		if out[i].valid() {
			hits++
		} else {
			// Leave removal and the invalidation/miss accounting to the
			// slow path's per-frame lookup.
			out[i] = nil
		}
	}
	if hits > 0 {
		c.stats.Hits.Add(hits)
	}
}

// insert installs a recorded megaflow, evicting an arbitrary entry of
// the same shard when the shard is at capacity (map iteration order
// gives a cheap pseudo-random victim, which is how the OVS microflow
// cache handles thrash: constant-time displacement, no LRU tracking).
func (c *microflowCache) insert(k *pkt.Key, mf *microflow) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if _, exists := sh.flows[*k]; !exists && len(sh.flows) >= c.cap {
		for victim := range sh.flows {
			delete(sh.flows, victim)
			c.stats.Evictions.Inc()
			break
		}
	}
	sh.flows[*k] = mf
	sh.mu.Unlock()
	c.stats.Inserts.Inc()
}

// Len returns the number of cached megaflows (diagnostics only).
func (c *microflowCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].flows)
		c.shards[i].mu.RUnlock()
	}
	return n
}
