// Parental control example — demo use case (c) of the paper:
// selectively deny specific users access to certain web pages, on the
// fly, by intercepting DNS in the OpenFlow pipeline.
//
//	go run ./examples/parentalcontrol
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func main() {
	pc := &apps.ParentalControl{Table: 0, NextTable: 1, UplinkPort: 3}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4, // kid on 1, parent on 2, home router/resolver on 3, trunk 4
		Apps:     []controller.App{pc, &apps.Learning{Table: 1}},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer d.Close()
	if err := d.WaitConnected(5 * time.Second); err != nil {
		log.Fatalf("controller: %v", err)
	}

	kid, parent, resolver := d.Hosts[1], d.Hosts[2], d.Hosts[3]
	resolver.ServeDNS(map[string]pkt.IPv4{
		"videos.example":   pkt.MustIPv4("10.0.0.99"),
		"homework.example": pkt.MustIPv4("10.0.0.88"),
	})

	query := func(who *fabric.Host, label, name string) {
		resp, err := who.QueryDNS(resolver.IP, name, 2*time.Second)
		switch {
		case err != nil:
			fmt.Printf("  %-7s %-18s -> error: %v\n", label, name, err)
		case resp.Rcode == pkt.DNSRcodeNXDomain:
			fmt.Printf("  %-7s %-18s -> NXDOMAIN (blocked)\n", label, name)
		case len(resp.Answers) > 0:
			fmt.Printf("  %-7s %-18s -> %s\n", label, name, resp.Answers[0].A)
		default:
			fmt.Printf("  %-7s %-18s -> empty answer\n", label, name)
		}
	}

	fmt.Println("no policy yet: everyone resolves everything")
	query(kid, "kid:", "videos.example")
	query(parent, "parent:", "videos.example")

	fmt.Println("\nblocking videos.example for the kid (on the fly, no restart)")
	pc.BlockDomain(kid.IP, "videos.example")
	query(kid, "kid:", "videos.example")
	query(kid, "kid:", "homework.example")
	query(parent, "parent:", "videos.example")

	fmt.Println("\nbedtime over: unblocking")
	pc.UnblockDomain(kid.IP, "videos.example")
	query(kid, "kid:", "videos.example")

	fmt.Printf("\ncontroller spoofed %d NXDOMAIN answers; every DNS decision was\n", pc.NXDomainCount())
	fmt.Println("taken per query in the controller — no per-user hardware needed")
}
